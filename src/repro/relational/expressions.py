"""Predicate expressions evaluated against tables.

Predicates model the WHERE-clause fragments the paper's SQL
implementation uses: equality predicates on dimension columns, NULL
checks (a fact leaves a dimension unrestricted by storing NULL), and
boolean combinations thereof.  Each predicate can evaluate a single row
(``matches_row``) or a whole table at once (``evaluate``), returning a
boolean mask.
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.relational.errors import SchemaError
from repro.relational.table import Table


@dataclass(frozen=True)
class ColumnRef:
    """Reference to a column by name (optionally qualified by table)."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


class Predicate(abc.ABC):
    """Base class for boolean expressions over table rows."""

    @abc.abstractmethod
    def matches_row(self, row: Mapping[str, Any]) -> bool:
        """Return True when the predicate holds for ``row`` (a dict)."""

    @abc.abstractmethod
    def referenced_columns(self) -> set[str]:
        """Names of all columns this predicate reads."""

    def evaluate(self, table: Table) -> list[bool]:
        """Evaluate the predicate against every row of ``table``.

        The default implementation iterates rows; subclasses override
        this with column-at-a-time evaluation where it pays off.
        """
        self._check_schema(table)
        return [self.matches_row(row) for row in table.iter_rows()]

    def _check_schema(self, table: Table) -> None:
        missing = self.referenced_columns() - set(table.column_names)
        if missing:
            raise SchemaError(
                f"predicate references unknown columns {sorted(missing)} "
                f"on table {table.name!r}"
            )

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "AndPredicate":
        return AndPredicate([self, other])

    def __or__(self, other: "Predicate") -> "OrPredicate":
        return OrPredicate([self, other])

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)


class TruePredicate(Predicate):
    """A predicate that accepts every row."""

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return True

    def referenced_columns(self) -> set[str]:
        return set()

    def evaluate(self, table: Table) -> list[bool]:
        return [True] * table.num_rows

    def __repr__(self) -> str:
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")


class EqualsPredicate(Predicate):
    """``column = value`` (NULL never matches)."""

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        return actual == self.value

    def referenced_columns(self) -> set[str]:
        return {self.column}

    def evaluate(self, table: Table) -> list[bool]:
        self._check_schema(table)
        col = table.column(self.column)
        target = self.value
        return [v is not None and v == target for v in col]

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EqualsPredicate):
            return NotImplemented
        return self.column == other.column and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.column, self.value))


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "!=": operator.ne,
}


class ComparisonPredicate(Predicate):
    """``column <op> value`` for numeric comparisons (NULL never matches)."""

    def __init__(self, column: str, op: str, value: Any):
        if op not in _COMPARATORS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        self.column = column
        self.op = op
        self.value = value
        self._fn = _COMPARATORS[op]

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        return self._fn(actual, self.value)

    def referenced_columns(self) -> set[str]:
        return {self.column}

    def evaluate(self, table: Table) -> list[bool]:
        self._check_schema(table)
        col = table.column(self.column)
        fn, target = self._fn, self.value
        return [v is not None and fn(v, target) for v in col]

    def __repr__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


class InPredicate(Predicate):
    """``column IN (values)`` (NULL never matches)."""

    def __init__(self, column: str, values: Sequence[Any]):
        self.column = column
        self.values = frozenset(values)

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        actual = row.get(self.column)
        return actual is not None and actual in self.values

    def referenced_columns(self) -> set[str]:
        return {self.column}

    def evaluate(self, table: Table) -> list[bool]:
        self._check_schema(table)
        col = table.column(self.column)
        values = self.values
        return [v is not None and v in values for v in col]

    def __repr__(self) -> str:
        return f"{self.column} IN {sorted(map(repr, self.values))}"


class IsNullPredicate(Predicate):
    """``column IS NULL`` (or ``IS NOT NULL`` when negate=True)."""

    def __init__(self, column: str, negate: bool = False):
        self.column = column
        self.negate = negate

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        is_null = row.get(self.column) is None
        return not is_null if self.negate else is_null

    def referenced_columns(self) -> set[str]:
        return {self.column}

    def evaluate(self, table: Table) -> list[bool]:
        self._check_schema(table)
        col = table.column(self.column)
        if self.negate:
            return [v is not None for v in col]
        return [v is None for v in col]

    def __repr__(self) -> str:
        return f"{self.column} IS {'NOT ' if self.negate else ''}NULL"


class AndPredicate(Predicate):
    """Conjunction of predicates."""

    def __init__(self, children: Sequence[Predicate]):
        self.children = list(children)

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return all(child.matches_row(row) for child in self.children)

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for child in self.children:
            cols |= child.referenced_columns()
        return cols

    def evaluate(self, table: Table) -> list[bool]:
        if not self.children:
            return [True] * table.num_rows
        result = self.children[0].evaluate(table)
        for child in self.children[1:]:
            mask = child.evaluate(table)
            result = [a and b for a, b in zip(result, mask)]
        return result

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(c) for c in self.children) + ")"


class OrPredicate(Predicate):
    """Disjunction of predicates."""

    def __init__(self, children: Sequence[Predicate]):
        self.children = list(children)

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return any(child.matches_row(row) for child in self.children)

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for child in self.children:
            cols |= child.referenced_columns()
        return cols

    def evaluate(self, table: Table) -> list[bool]:
        if not self.children:
            return [False] * table.num_rows
        result = self.children[0].evaluate(table)
        for child in self.children[1:]:
            mask = child.evaluate(table)
            result = [a or b for a, b in zip(result, mask)]
        return result

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(c) for c in self.children) + ")"


class NotPredicate(Predicate):
    """Negation of a predicate."""

    def __init__(self, child: Predicate):
        self.child = child

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        return not self.child.matches_row(row)

    def referenced_columns(self) -> set[str]:
        return self.child.referenced_columns()

    def evaluate(self, table: Table) -> list[bool]:
        return [not v for v in self.child.evaluate(table)]

    def __repr__(self) -> str:
        return f"NOT ({self.child!r})"


def conjunction_of_equalities(assignments: Mapping[str, Any]) -> Predicate:
    """Build ``col1 = v1 AND col2 = v2 AND ...`` from a mapping.

    An empty mapping yields :class:`TruePredicate` (no restriction),
    matching how an empty query scope selects the whole relation.
    """
    if not assignments:
        return TruePredicate()
    children = [EqualsPredicate(col, val) for col, val in sorted(assignments.items())]
    if len(children) == 1:
        return children[0]
    return AndPredicate(children)
