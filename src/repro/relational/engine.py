"""Facade bundling tables, catalog statistics and cost estimation.

The summarizer components take a :class:`RelationalEngine` where the
paper's implementation would hold a database connection.  It offers the
handful of query shapes the algorithms need (filter, group-by
aggregation, scope joins) plus access to catalog statistics for the
cost-based pruning optimizer.
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.aggregates import AggregateSpec
from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.csvio import read_csv
from repro.relational.expressions import Predicate
from repro.relational.operators import group_by, project, scope_match_join, select
from repro.relational.planner import CostEstimator
from repro.relational.table import Table


class RelationalEngine:
    """A tiny in-memory stand-in for the relational DBMS of Figure 2."""

    def __init__(self) -> None:
        self._catalog = Catalog()
        self._query_count = 0

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        """The engine's catalog (tables + statistics)."""
        return self._catalog

    @property
    def query_count(self) -> int:
        """Number of query-shaped operations executed (for diagnostics)."""
        return self._query_count

    def register_table(self, table: Table) -> None:
        """Register a table so it can be referenced by name."""
        self._catalog.register(table)

    def load_csv(self, path: str, name: str | None = None, **kwargs) -> Table:
        """Load a CSV file and register the resulting table."""
        table = read_csv(path, name=name, **kwargs)
        self.register_table(table)
        return table

    def table(self, name: str) -> Table:
        """Fetch a registered table by name."""
        return self._catalog.table(name)

    def statistics(self, name: str) -> TableStatistics:
        """Fetch statistics for a registered table."""
        return self._catalog.statistics(name)

    def cost_estimator(self, name: str, tuple_cost: float = 1.0) -> CostEstimator:
        """Build a cost estimator over the statistics of table ``name``."""
        return CostEstimator(self.statistics(name), tuple_cost=tuple_cost)

    # ------------------------------------------------------------------
    # Query shapes used by the summarizer
    # ------------------------------------------------------------------
    def filter(self, table: Table, predicate: Predicate) -> Table:
        """σ — filter rows of a table."""
        self._query_count += 1
        return select(table, predicate)

    def aggregate(
        self,
        table: Table,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> Table:
        """Γ — group-by aggregation."""
        self._query_count += 1
        return group_by(table, keys, aggregates)

    def project(self, table: Table, columns: Sequence[str], distinct: bool = False) -> Table:
        """Π — projection."""
        self._query_count += 1
        return project(table, columns, distinct=distinct)

    def scope_join(
        self,
        data: Table,
        facts: Table,
        dimension_columns: Sequence[str],
    ) -> Table:
        """⋈M — join data rows with facts whose scope contains them."""
        self._query_count += 1
        return scope_match_join(data, facts, dimension_columns)
