"""Catalog statistics over registered tables.

The paper's cost model (Section VI-C) consumes "query optimizer
statistics": the number of distinct value combinations in subsets of
dimension columns and table cardinalities.  The :class:`Catalog`
maintains those statistics for the in-memory engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.relational.errors import UnknownTableError
from repro.relational.table import Table


@dataclass
class TableStatistics:
    """Statistics collected for one table.

    Attributes
    ----------
    row_count:
        Number of rows.
    distinct_counts:
        Per-column count of distinct non-NULL values.
    null_counts:
        Per-column count of NULL values.
    """

    row_count: int
    distinct_counts: dict[str, int] = field(default_factory=dict)
    null_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_table(cls, table: Table) -> "TableStatistics":
        """Collect statistics from ``table``."""
        distinct = {c.name: c.distinct_count() for c in table.columns}
        nulls = {c.name: c.null_count() for c in table.columns}
        return cls(row_count=table.num_rows, distinct_counts=distinct, null_counts=nulls)

    def distinct_count(self, column: str) -> int:
        """Distinct count for a single column (0 when unknown)."""
        return self.distinct_counts.get(column, 0)

    def combination_count(self, columns: Sequence[str]) -> int:
        """Estimated number of distinct value combinations over ``columns``.

        Uses the standard independence assumption (product of per-column
        distinct counts), capped by the row count.  The empty column set
        has exactly one combination (the unrestricted scope).
        """
        if not columns:
            return 1
        estimate = 1
        for col in columns:
            estimate *= max(1, self.distinct_count(col))
        return min(estimate, max(1, self.row_count))

    def selectivity(self, columns: Sequence[str]) -> float:
        """Estimated fraction of rows matching one value combination."""
        combos = self.combination_count(columns)
        return 1.0 / combos if combos else 1.0


class Catalog:
    """Registry of tables and their statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStatistics] = {}

    def register(self, table: Table) -> None:
        """Register (or replace) a table and refresh its statistics."""
        self._tables[table.name] = table
        self._stats[table.name] = TableStatistics.from_table(table)

    def unregister(self, name: str) -> None:
        """Remove a table from the catalog (no-op when absent)."""
        self._tables.pop(name, None)
        self._stats.pop(name, None)

    def table(self, name: str) -> Table:
        """Return the registered table ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def statistics(self, name: str) -> TableStatistics:
        """Return statistics for table ``name``."""
        try:
            return self._stats[name]
        except KeyError:
            raise UnknownTableError(
                f"no statistics for table {name!r}; registered: {sorted(self._stats)}"
            ) from None

    def has_table(self, name: str) -> bool:
        """Return True when ``name`` is registered."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return sorted(self._tables)

    def refresh(self, names: Iterable[str] | None = None) -> None:
        """Recompute statistics for the given tables (all when None)."""
        targets = list(names) if names is not None else list(self._tables)
        for name in targets:
            table = self.table(name)
            self._stats[name] = TableStatistics.from_table(table)
