"""CSV import/export for tables.

The original evaluation loads public CSV data sets (flight delays,
developer survey, ACS, primaries) into Postgres.  These helpers provide
the equivalent path into the in-memory engine, plus export for
inspecting intermediate results.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from repro.relational.column import Column, ColumnType
from repro.relational.errors import SchemaError
from repro.relational.table import Table


def _parse_cell(raw: str, ctype: ColumnType):
    """Convert a CSV cell to the column's value domain ('' -> NULL)."""
    if raw == "":
        return None
    if ctype is ColumnType.NUMERIC:
        return float(raw)
    if ctype is ColumnType.INTEGER:
        return int(float(raw))
    return raw


def read_csv(
    path: str | Path,
    name: str | None = None,
    types: Mapping[str, ColumnType] | None = None,
    limit: int | None = None,
) -> Table:
    """Read a CSV file into a :class:`Table`.

    Parameters
    ----------
    path:
        File to read; the first row must contain column names.
    name:
        Table name (defaults to the file stem).
    types:
        Optional per-column types; unlisted columns default to
        CATEGORICAL unless every value parses as a float, in which case
        they become NUMERIC.
    limit:
        Optional cap on the number of data rows read.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        rows: list[list[str]] = []
        for i, row in enumerate(reader):
            if limit is not None and i >= limit:
                break
            if len(row) != len(header):
                raise SchemaError(
                    f"CSV file {path}: row {i + 2} has {len(row)} cells, expected {len(header)}"
                )
            rows.append(row)

    resolved_types: dict[str, ColumnType] = {}
    for pos, cname in enumerate(header):
        if types is not None and cname in types:
            resolved_types[cname] = types[cname]
            continue
        resolved_types[cname] = _infer_csv_type([r[pos] for r in rows])

    columns = []
    for pos, cname in enumerate(header):
        ctype = resolved_types[cname]
        columns.append(
            Column(cname, ctype, [_parse_cell(r[pos], ctype) for r in rows])
        )
    return Table(name or path.stem, columns)


def _infer_csv_type(raw_values: Sequence[str]) -> ColumnType:
    """Infer NUMERIC when every non-empty cell parses as a float."""
    saw_value = False
    for raw in raw_values:
        if raw == "":
            continue
        saw_value = True
        try:
            float(raw)
        except ValueError:
            return ColumnType.CATEGORICAL
    return ColumnType.NUMERIC if saw_value else ColumnType.CATEGORICAL


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to a CSV file (NULL -> empty cell)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow(
                ["" if row[c] is None else row[c] for c in table.column_names]
            )
