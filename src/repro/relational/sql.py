"""A minimal SQL layer over the in-memory engine.

The paper's implementation "executes the algorithm by issuing a series
of SQL queries".  The reproduction expresses the algorithms through the
operator API directly, but a small SQL surface is still useful: it lets
examples and tests phrase the same queries the paper's implementation
would issue, and it documents the exact query shapes the summarizer
needs.  The dialect is intentionally tiny:

    SELECT <projection> FROM <table>
    [WHERE <cond> [AND <cond>]...]
    [GROUP BY <col> [, <col>]...]
    [ORDER BY <col> [DESC]]
    [LIMIT <n>]

where a projection item is a column name, ``*``, or an aggregate
``SUM(col) [AS name]`` / ``AVG`` / ``COUNT`` / ``MIN`` / ``MAX``
(``COUNT(*)`` included), and a condition is ``col = value``,
``col != value``, ``col < value``, ``col <= value``, ``col > value``,
``col >= value`` or ``col IS [NOT] NULL``.  String literals use single
quotes; everything else is parsed as a number.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.relational.aggregates import AVG, COUNT, MAX, MIN, SUM, AggregateSpec
from repro.relational.errors import RelationalError
from repro.relational.expressions import (
    AndPredicate,
    ComparisonPredicate,
    EqualsPredicate,
    IsNullPredicate,
    Predicate,
    TruePredicate,
)
from repro.relational.operators import group_by, project, select
from repro.relational.table import Table


class SqlSyntaxError(RelationalError):
    """Raised when a query string cannot be parsed."""


_AGGREGATE_FACTORIES = {"SUM": SUM, "AVG": AVG, "COUNT": COUNT, "MIN": MIN, "MAX": MAX}

_AGGREGATE_RE = re.compile(
    r"^(?P<fn>SUM|AVG|COUNT|MIN|MAX)\s*\(\s*(?P<arg>\*|[A-Za-z_][A-Za-z_0-9]*)\s*\)"
    r"(?:\s+AS\s+(?P<alias>[A-Za-z_][A-Za-z_0-9]*))?$",
    re.IGNORECASE,
)
_CONDITION_RE = re.compile(
    r"^(?P<col>[A-Za-z_][A-Za-z_0-9]*)\s*"
    r"(?P<op>>=|<=|!=|=|<|>|\s+IS\s+NOT\s+NULL|\s+IS\s+NULL)\s*"
    r"(?P<value>.*)$",
    re.IGNORECASE,
)
_CLAUSE_RE = re.compile(
    r"^\s*SELECT\s+(?P<select>.+?)\s+FROM\s+(?P<table>[A-Za-z_][A-Za-z_0-9]*)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>.+?))?"
    r"(?:\s+ORDER\s+BY\s+(?P<order>.+?))?"
    r"(?:\s+LIMIT\s+(?P<limit>\d+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)


@dataclass
class ParsedQuery:
    """Structured form of a parsed SELECT statement."""

    table: str
    columns: list[str] = field(default_factory=list)
    aggregates: list[AggregateSpec] = field(default_factory=list)
    select_all: bool = False
    predicate: Predicate = field(default_factory=TruePredicate)
    group_by: list[str] = field(default_factory=list)
    order_by: str | None = None
    order_descending: bool = False
    limit: int | None = None

    @property
    def is_aggregation(self) -> bool:
        """True when the query computes aggregates (with or without GROUP BY)."""
        return bool(self.aggregates)


def _parse_literal(raw: str) -> Any:
    raw = raw.strip()
    if not raw:
        raise SqlSyntaxError("missing literal value")
    if raw[0] == "'" and raw[-1] == "'" and len(raw) >= 2:
        return raw[1:-1]
    lowered = raw.lower()
    if lowered == "null":
        return None
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        value = float(raw)
    except ValueError as exc:
        raise SqlSyntaxError(f"cannot parse literal {raw!r}") from exc
    return int(value) if value.is_integer() and "." not in raw else value


def _parse_condition(fragment: str) -> Predicate:
    fragment = fragment.strip()
    match = _CONDITION_RE.match(fragment)
    if not match:
        raise SqlSyntaxError(f"cannot parse condition {fragment!r}")
    column = match.group("col")
    operator = match.group("op").strip().upper()
    value_text = match.group("value").strip()
    if operator == "IS NULL":
        return IsNullPredicate(column)
    if operator == "IS NOT NULL":
        return IsNullPredicate(column, negate=True)
    value = _parse_literal(value_text)
    if operator == "=":
        return EqualsPredicate(column, value)
    # "!=" uses ComparisonPredicate so that NULLs never match (SQL's
    # three-valued logic treats NULL != x as unknown).
    return ComparisonPredicate(column, operator, value)


def _parse_where(clause: str | None) -> Predicate:
    if not clause:
        return TruePredicate()
    fragments = re.split(r"\s+AND\s+", clause.strip(), flags=re.IGNORECASE)
    predicates = [_parse_condition(fragment) for fragment in fragments]
    if len(predicates) == 1:
        return predicates[0]
    return AndPredicate(predicates)


def _parse_select_items(clause: str) -> tuple[list[str], list[AggregateSpec], bool]:
    columns: list[str] = []
    aggregates: list[AggregateSpec] = []
    select_all = False
    for raw_item in clause.split(","):
        item = raw_item.strip()
        if not item:
            raise SqlSyntaxError("empty select item")
        if item == "*":
            select_all = True
            continue
        match = _AGGREGATE_RE.match(item)
        if match:
            factory = _AGGREGATE_FACTORIES[match.group("fn").upper()]
            argument = match.group("arg")
            alias = match.group("alias")
            if argument == "*":
                if factory is not COUNT:
                    raise SqlSyntaxError(f"{match.group('fn')}(*) is not supported")
                aggregates.append(COUNT(None, alias))
            else:
                aggregates.append(factory(argument, alias))
            continue
        if not re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", item):
            raise SqlSyntaxError(f"cannot parse select item {item!r}")
        columns.append(item)
    return columns, aggregates, select_all


def parse_sql(query: str) -> ParsedQuery:
    """Parse a SELECT statement into a :class:`ParsedQuery`."""
    match = _CLAUSE_RE.match(query)
    if not match:
        raise SqlSyntaxError(f"cannot parse query {query!r}")
    columns, aggregates, select_all = _parse_select_items(match.group("select"))
    group_columns = []
    if match.group("group"):
        group_columns = [col.strip() for col in match.group("group").split(",") if col.strip()]
    order_by = None
    descending = False
    if match.group("order"):
        order_clause = match.group("order").strip()
        parts = order_clause.split()
        order_by = parts[0]
        if len(parts) > 1:
            direction = parts[1].upper()
            if direction not in ("ASC", "DESC"):
                raise SqlSyntaxError(f"cannot parse ORDER BY direction {parts[1]!r}")
            descending = direction == "DESC"
    limit = int(match.group("limit")) if match.group("limit") else None
    return ParsedQuery(
        table=match.group("table"),
        columns=columns,
        aggregates=aggregates,
        select_all=select_all,
        predicate=_parse_where(match.group("where")),
        group_by=group_columns,
        order_by=order_by,
        order_descending=descending,
        limit=limit,
    )


def execute_sql(query: str, tables: dict[str, Table] | Table) -> Table:
    """Parse and execute a SELECT statement.

    ``tables`` is either a mapping of table names to tables or a single
    table (whose name must match the FROM clause).
    """
    parsed = parse_sql(query)
    if isinstance(tables, Table):
        available = {tables.name: tables}
    else:
        available = dict(tables)
    if parsed.table not in available:
        raise RelationalError(
            f"unknown table {parsed.table!r}; available: {sorted(available)}"
        )
    table = available[parsed.table]

    result = select(table, parsed.predicate)
    if parsed.is_aggregation or parsed.group_by:
        keys = parsed.group_by or []
        result = group_by(result, keys, parsed.aggregates, name=f"{parsed.table}_agg")
    elif not parsed.select_all:
        result = project(result, parsed.columns, name=f"{parsed.table}_proj")
    elif parsed.columns:
        # "SELECT *, extra" is not supported; '*' must stand alone.
        raise SqlSyntaxError("'*' cannot be combined with explicit columns")

    if parsed.order_by is not None:
        result = result.sorted_by(parsed.order_by, descending=parsed.order_descending)
    if parsed.limit is not None:
        result = result.head(parsed.limit)
    return result


class SqlSession:
    """Convenience wrapper binding a set of tables for repeated queries."""

    def __init__(self, tables: dict[str, Table] | None = None):
        self._tables: dict[str, Table] = dict(tables or {})

    def register(self, table: Table) -> None:
        """Make ``table`` queryable under its name."""
        self._tables[table.name] = table

    def query(self, sql: str) -> Table:
        """Execute a SELECT statement against the registered tables."""
        return execute_sql(sql, self._tables)

    def tables(self) -> list[str]:
        """Names of all registered tables."""
        return sorted(self._tables)
