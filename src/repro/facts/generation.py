"""Candidate fact enumeration.

Following Section III, the facts considered for summarizing the answer
to a query are the averages of the target column over data subsets
defined by the query's predicates plus up to ``max_extra_dimensions``
additional equality predicates on the dimension columns, for every
value combination that actually appears in the data subset.

The generator also always includes the "overall" fact — the average
over the whole data subset (no additional predicates) — which the
paper's example speeches use ("It is 35 overall.").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.model import Fact, Scope, SummarizationRelation
from repro.facts.groups import FactGroup, enumerate_fact_groups


@dataclass
class GeneratedFacts:
    """Result of candidate fact generation.

    Attributes
    ----------
    facts:
        All candidate facts.
    by_group:
        Facts keyed by their fact group (set of restricted *additional*
        dimensions, excluding the fixed base-scope columns).
    base_scope:
        The scope shared by every candidate (the query's predicates).
    """

    facts: list[Fact]
    by_group: dict[FactGroup, list[Fact]] = field(default_factory=dict)
    base_scope: Scope = field(default_factory=Scope)

    @property
    def count(self) -> int:
        """Number of candidate facts."""
        return len(self.facts)

    def groups(self) -> list[FactGroup]:
        """Fact groups with at least one candidate fact."""
        return list(self.by_group)

    def facts_in_groups(self, groups: Sequence[FactGroup]) -> list[Fact]:
        """Facts belonging to any of the given groups."""
        wanted = set(groups)
        out: list[Fact] = []
        for group, members in self.by_group.items():
            if group in wanted:
                out.extend(members)
        return out


class FactGenerator:
    """Enumerates candidate facts for one relation / data subset.

    Parameters
    ----------
    relation:
        The relation (already restricted to the query's data subset) to
        generate facts for.
    max_extra_dimensions:
        Maximal number of additional dimension columns a fact may
        restrict beyond the base scope (the paper's default is two).
    min_support:
        Minimal number of rows a fact's scope must cover; scopes with
        fewer rows are skipped (they describe noise, not signal).
    vectorized:
        When True (default), per-group fact enumeration runs on the
        relation's cached dimension codes (one ``np.bincount`` over the
        base-scope rows per group combination) instead of per-row Python
        set membership.  Both paths produce identical facts; the Python
        path is kept as the parity/benchmark reference.
    """

    def __init__(
        self,
        relation: SummarizationRelation,
        max_extra_dimensions: int = 2,
        min_support: int = 1,
        vectorized: bool = True,
    ):
        if max_extra_dimensions < 0:
            raise ValueError("max_extra_dimensions must be non-negative")
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        self._relation = relation
        self._max_extra = max_extra_dimensions
        self._min_support = min_support
        self._vectorized = vectorized

    @property
    def relation(self) -> SummarizationRelation:
        """The relation facts are generated for."""
        return self._relation

    def generate(self, base_scope: Mapping[str, Any] | Scope | None = None) -> GeneratedFacts:
        """Enumerate candidate facts.

        ``base_scope`` fixes the query's own predicates: every candidate
        fact includes them, and the additional predicates are placed on
        the remaining ("free") dimension columns.
        """
        base = base_scope if isinstance(base_scope, Scope) else Scope(dict(base_scope or {}))
        free_dimensions = [
            dim for dim in self._relation.dimensions if not base.restricts(dim)
        ]
        groups = enumerate_fact_groups(
            free_dimensions, max_arity=self._max_extra, include_empty=True
        )

        facts: list[Fact] = []
        by_group: dict[FactGroup, list[Fact]] = {}
        target = self._relation.target_values
        base_indices = self._relation.scope_row_indices(base)
        # The base-membership mask is shared by every group combination;
        # only the vectorized path consumes it.
        in_base = None
        if self._vectorized:
            in_base = np.zeros(self._relation.num_rows, dtype=bool)
            in_base[base_indices] = True

        for group in groups:
            members = self._facts_for_group(base, group, base_indices, in_base, target)
            if members:
                by_group[group] = members
                facts.extend(members)
        return GeneratedFacts(facts=facts, by_group=by_group, base_scope=base)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _facts_for_group(
        self,
        base: Scope,
        group: FactGroup,
        base_indices: np.ndarray,
        in_base: np.ndarray | None,
        target: np.ndarray,
    ) -> list[Fact]:
        """Facts restricting exactly the dimensions of ``group`` (plus base)."""
        if base_indices.size == 0:
            return []
        if group.arity == 0:
            values = target[base_indices]
            if values.size < self._min_support:
                return []
            fact = Fact(scope=base, value=float(values.mean()), support=int(values.size))
            return [fact]
        if not self._vectorized:
            return self._facts_for_group_reference(base, group, base_indices, target)

        # One bincount over the base-scope rows yields every group's
        # support at once; only qualifying groups are materialized, each
        # via an O(group size) slice of the cached grouped-row layout.
        dims = list(group.dimensions)
        inverse, keys = self._relation.grouping(dims)
        order, offsets, _ = self._relation.group_segments(dims)
        counts = np.bincount(inverse[base_indices], minlength=len(keys))

        facts: list[Fact] = []
        base_assignments = base.assignments
        # Group ids follow first appearance in the data, so ascending id
        # order reproduces the reference path's fact order exactly.
        for g in np.nonzero(counts >= self._min_support)[0]:
            key = keys[g]
            if any(v is None for v in key):
                continue
            segment = order[offsets[g] : offsets[g + 1]]
            members = (
                segment if counts[g] == segment.size else segment[in_base[segment]]
            )
            assignments = dict(base_assignments)
            assignments.update(zip(dims, key))
            values = target[members]
            facts.append(
                Fact(
                    scope=Scope(assignments),
                    value=float(values.mean()),
                    support=int(members.size),
                )
            )
        return facts

    def _facts_for_group_reference(
        self,
        base: Scope,
        group: FactGroup,
        base_indices: np.ndarray,
        target: np.ndarray,
    ) -> list[Fact]:
        """Per-row Python reference enumeration (parity oracle / baseline)."""
        groups_by_value = self._relation.group_rows_by(list(group.dimensions))
        base_set = set(int(i) for i in base_indices)
        facts: list[Fact] = []
        for key, indices in groups_by_value.items():
            if any(v is None for v in key):
                continue
            member_indices = [int(i) for i in indices if int(i) in base_set]
            if len(member_indices) < self._min_support:
                continue
            assignments = dict(base.assignments)
            assignments.update(dict(zip(group.dimensions, key)))
            values = target[member_indices]
            facts.append(
                Fact(
                    scope=Scope(assignments),
                    value=float(values.mean()),
                    support=len(member_indices),
                )
            )
        return facts
