"""Fact groups: sets of restricted dimension columns.

A fact group collects all candidate facts that restrict exactly the
same set of dimension columns (e.g. all facts restricting ``region``
but not ``season``).  Groups form a lattice under the subset relation:
a group G2 *specializes* G1 when G1 ⊂ G2 (it restricts strictly more
columns, hence each of its facts covers a subset of the data).  The
pruning mechanism of Section VI-B prunes a group together with all its
specializations.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence


@dataclass(frozen=True, order=True)
class FactGroup:
    """A fact group, identified by the sorted tuple of restricted dimensions."""

    dimensions: tuple[str, ...]

    def __init__(self, dimensions: Iterable[str]):
        object.__setattr__(self, "dimensions", tuple(sorted(set(dimensions))))

    @property
    def arity(self) -> int:
        """Number of restricted dimensions."""
        return len(self.dimensions)

    def is_specialization_of(self, other: "FactGroup") -> bool:
        """True when this group restricts a superset of ``other``'s dimensions.

        The relation is reflexive (matching the paper's pruning rule
        ``t ⊆ g``: a pruned target removes itself and its strict
        specializations).
        """
        return set(other.dimensions).issubset(self.dimensions)

    def __repr__(self) -> str:
        if not self.dimensions:
            return "FactGroup(<no dims>)"
        return f"FactGroup({', '.join(self.dimensions)})"


def enumerate_fact_groups(
    dimensions: Sequence[str],
    max_arity: int | None = None,
    include_empty: bool = False,
) -> list[FactGroup]:
    """Enumerate fact groups over ``dimensions`` (the POWERSET of Alg. 3/4).

    Parameters
    ----------
    dimensions:
        Available dimension columns.
    max_arity:
        Maximal number of restricted dimensions per group; None means no
        limit (the full power set).
    include_empty:
        Whether to include the empty group (the single fact describing
        the whole data subset).  The system always considers the overall
        average as a fact, so the generator includes it by default — but
        pruning plans never need to prune the singleton group, hence the
        flag.
    """
    dims = sorted(set(dimensions))
    limit = len(dims) if max_arity is None else min(max_arity, len(dims))
    groups: list[FactGroup] = []
    start = 0 if include_empty else 1
    for arity in range(start, limit + 1):
        for combo in combinations(dims, arity):
            groups.append(FactGroup(combo))
    return groups


def specializations(group: FactGroup, universe: Iterable[FactGroup]) -> list[FactGroup]:
    """All groups in ``universe`` that specialize ``group`` (including itself)."""
    return [g for g in universe if g.is_specialization_of(group)]
