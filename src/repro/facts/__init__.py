"""Candidate fact enumeration and fact-group machinery.

The system considers one fact for each data subset defined by a
conjunction of the query predicates plus (by default) up to two
additional equality predicates on the dimensions (Section III).  Facts
are organised into *fact groups*, characterised by the set of
restricted dimension columns; groups are the granularity at which the
pruning of Section VI operates.
"""

from repro.facts.groups import FactGroup, enumerate_fact_groups, specializations
from repro.facts.generation import FactGenerator, GeneratedFacts
from repro.facts.bounds import GroupBound, bounds_for_groups, group_utility_bounds
from repro.facts.cube import CubeFactGenerator, DataCube

__all__ = [
    "FactGroup",
    "enumerate_fact_groups",
    "specializations",
    "FactGenerator",
    "GeneratedFacts",
    "GroupBound",
    "group_utility_bounds",
    "bounds_for_groups",
    "DataCube",
    "CubeFactGenerator",
]
