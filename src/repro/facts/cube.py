"""Shared data-cube acceleration for batch fact generation.

During pre-processing the problem generator enumerates thousands of
overlapping queries over the same table (Section III): every query's
candidate facts are averages over subsets defined by dimension-value
combinations.  Recomputing those averages per query repeats work — the
average of ``(season=Winter, region=East)`` is needed by the Winter
query, the East query and the overall query alike.

:class:`DataCube` materialises sum/count aggregates for every
dimension-column combination up to a bounded arity once per (table,
target) pair; :class:`CubeFactGenerator` then serves candidate facts
for any base scope by slicing the cube, producing exactly the facts the
per-query :class:`repro.facts.generation.FactGenerator` would.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.model import Fact, Scope, SummarizationRelation
from repro.facts.generation import GeneratedFacts
from repro.facts.groups import FactGroup


@dataclass(frozen=True)
class _CubeCell:
    """Aggregates of one dimension-value combination."""

    total: float
    count: int

    @property
    def average(self) -> float:
        return self.total / self.count


class DataCube:
    """Sum/count aggregates for all column combinations up to ``max_arity``.

    Cells are stored in a two-level index — column combination first,
    then value tuple — so :meth:`cells_for_columns` touches only the
    cells of the requested combination instead of scanning every cell.

    The build is a single factorize-then-aggregate pass: each dimension
    is encoded to integer codes once, per-combination keys are composed
    in mixed radix from those codes, and sums/counts fall out of two
    ``np.bincount`` calls per combination — no per-row Python.
    """

    def __init__(self, relation: SummarizationRelation, max_arity: int):
        if max_arity < 0:
            raise ValueError("max_arity must be non-negative")
        self._relation = relation
        self._max_arity = min(max_arity, len(relation.dimensions))
        self._cells_by_columns: dict[tuple[str, ...], dict[tuple[Any, ...], _CubeCell]] = {}
        self._build()

    def _build(self) -> None:
        relation = self._relation
        target = relation.target_values
        dimensions = sorted(relation.dimensions)
        for arity in range(0, self._max_arity + 1):
            for columns in combinations(dimensions, arity):
                self._cells_by_columns[columns] = self._aggregate(columns, target)

    def _aggregate(
        self, columns: tuple[str, ...], target: np.ndarray
    ) -> dict[tuple[Any, ...], _CubeCell]:
        """Sum/count cells of one column combination.

        Reuses the relation's cached grouped row layout; combinations
        containing NULL values are skipped (they describe no fact).
        Each cell's target slice is ascending in row order and summed
        with NumPy's pairwise summation — bitwise-identical to the
        per-query generator's ``values.mean()`` over the same rows,
        which the parity tests rely on.
        """
        if not columns:
            return {(): _CubeCell(total=float(target.sum()), count=int(target.size))}
        order, offsets, key_to_group = self._relation.group_segments(columns)
        target_grouped = target[order]
        cells: dict[tuple[Any, ...], _CubeCell] = {}
        for key, group in key_to_group.items():
            if any(value is None for value in key):
                continue
            lo = offsets[group]
            hi = offsets[group + 1]
            cells[key] = _CubeCell(
                total=float(target_grouped[lo:hi].sum()), count=int(hi - lo)
            )
        return cells

    @property
    def max_arity(self) -> int:
        """Maximal number of restricted columns materialised."""
        return self._max_arity

    @property
    def cell_count(self) -> int:
        """Number of materialised cells."""
        return sum(len(cells) for cells in self._cells_by_columns.values())

    def cell_index_sizes(self) -> dict[tuple[str, ...], int]:
        """Number of cells per materialised column combination."""
        return {columns: len(cells) for columns, cells in self._cells_by_columns.items()}

    def has_combination(self, columns: tuple[str, ...]) -> bool:
        """True when the column combination was materialised."""
        return tuple(sorted(columns)) in self._cells_by_columns

    def cell(self, assignments: Mapping[str, Any]) -> _CubeCell | None:
        """The cell for ``assignments`` (None when empty or not materialised)."""
        columns = tuple(sorted(assignments))
        cells = self._cells_by_columns.get(columns)
        if cells is None:
            return None
        return cells.get(tuple(assignments[c] for c in columns))

    def average(self, assignments: Mapping[str, Any]) -> tuple[float | None, int]:
        """Average target value and support for a dimension-value combination."""
        cell = self.cell(assignments)
        if cell is None:
            return None, 0
        return cell.average, cell.count

    def cells_for_columns(
        self, columns: tuple[str, ...]
    ) -> Iterator[tuple[tuple[Any, ...], _CubeCell]]:
        """Iterate (value tuple, cell) for one column combination.

        Served from the per-combination index: O(cells in combination),
        not O(total cells).
        """
        yield from self._cells_by_columns.get(tuple(sorted(columns)), {}).items()


class CubeFactGenerator:
    """Serves candidate facts for any base scope from a shared data cube.

    Parameters
    ----------
    relation:
        The full relation (not pre-filtered to a query subset).
    max_extra_dimensions:
        Additional dimensions a fact may restrict beyond the base scope
        (the paper's default is two).
    max_base_dimensions:
        Maximal number of base-scope predicates expected (the configured
        query length); the cube materialises combinations up to
        ``max_base_dimensions + max_extra_dimensions`` columns.
    min_support:
        Minimal rows per fact.
    """

    def __init__(
        self,
        relation: SummarizationRelation,
        max_extra_dimensions: int = 2,
        max_base_dimensions: int = 2,
        min_support: int = 1,
    ):
        if max_extra_dimensions < 0 or max_base_dimensions < 0:
            raise ValueError("dimension limits must be non-negative")
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        self._relation = relation
        self._max_extra = max_extra_dimensions
        self._min_support = min_support
        self._cube = DataCube(relation, max_base_dimensions + max_extra_dimensions)

    @property
    def cube(self) -> DataCube:
        """The underlying data cube."""
        return self._cube

    def generate(self, base_scope: Mapping[str, Any] | Scope | None = None) -> GeneratedFacts:
        """Candidate facts for one query's base scope, served from the cube."""
        base = base_scope if isinstance(base_scope, Scope) else Scope(dict(base_scope or {}))
        base_assignments = base.assignments
        free_dimensions = sorted(
            dim for dim in self._relation.dimensions if not base.restricts(dim)
        )

        facts: list[Fact] = []
        by_group: dict[FactGroup, list[Fact]] = {}
        for arity in range(0, self._max_extra + 1):
            for extra_columns in combinations(free_dimensions, arity):
                # Group keys follow FactGenerator's convention: the *extra*
                # dimensions beyond the base scope identify the group.
                group = FactGroup(extra_columns)
                members = self._facts_for_columns(base_assignments, extra_columns)
                if members:
                    by_group[group] = members
                    facts.extend(members)
        return GeneratedFacts(facts=facts, by_group=by_group, base_scope=base)

    def _facts_for_columns(
        self,
        base_assignments: dict[str, Any],
        extra_columns: tuple[str, ...],
    ) -> list[Fact]:
        """Facts restricting the base columns plus exactly ``extra_columns``."""
        all_columns = tuple(sorted(tuple(base_assignments) + extra_columns))
        if not self._cube.has_combination(all_columns):
            # Silently serving a truncated fact set would be
            # indistinguishable from "no data"; fail loudly instead.
            raise ValueError(
                f"data cube does not materialise column combination {all_columns}; "
                "the base scope restricts more dimensions than max_base_dimensions"
            )
        facts = []
        for values, cell in self._cube.cells_for_columns(all_columns):
            assignments = dict(zip(all_columns, values))
            if any(assignments[c] != v for c, v in base_assignments.items()):
                continue
            if cell.count < self._min_support:
                continue
            facts.append(
                Fact(scope=Scope(assignments), value=cell.average, support=cell.count)
            )
        return facts
