"""Shared data-cube acceleration for batch fact generation.

During pre-processing the problem generator enumerates thousands of
overlapping queries over the same table (Section III): every query's
candidate facts are averages over subsets defined by dimension-value
combinations.  Recomputing those averages per query repeats work — the
average of ``(season=Winter, region=East)`` is needed by the Winter
query, the East query and the overall query alike.

:class:`DataCube` materialises sum/count aggregates for every
dimension-column combination up to a bounded arity once per (table,
target) pair; :class:`CubeFactGenerator` then serves candidate facts
for any base scope by slicing the cube, producing exactly the facts the
per-query :class:`repro.facts.generation.FactGenerator` would.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Mapping

from repro.core.model import Fact, Scope, SummarizationRelation
from repro.facts.generation import GeneratedFacts
from repro.facts.groups import FactGroup


@dataclass(frozen=True)
class _CubeCell:
    """Aggregates of one dimension-value combination."""

    total: float
    count: int

    @property
    def average(self) -> float:
        return self.total / self.count


class DataCube:
    """Sum/count aggregates for all column combinations up to ``max_arity``.

    Cells are keyed by (sorted column tuple, value tuple in that order).
    """

    def __init__(self, relation: SummarizationRelation, max_arity: int):
        if max_arity < 0:
            raise ValueError("max_arity must be non-negative")
        self._relation = relation
        self._max_arity = min(max_arity, len(relation.dimensions))
        self._cells: dict[tuple[tuple[str, ...], tuple[Any, ...]], _CubeCell] = {}
        self._build()

    def _build(self) -> None:
        target = self._relation.target_values
        dimensions = sorted(self._relation.dimensions)
        for arity in range(0, self._max_arity + 1):
            for columns in combinations(dimensions, arity):
                groups = self._relation.group_rows_by(list(columns))
                for values, indices in groups.items():
                    if any(v is None for v in values):
                        continue
                    cell_values = target[indices]
                    self._cells[(columns, values)] = _CubeCell(
                        total=float(cell_values.sum()), count=int(indices.size)
                    )

    @property
    def max_arity(self) -> int:
        """Maximal number of restricted columns materialised."""
        return self._max_arity

    @property
    def cell_count(self) -> int:
        """Number of materialised cells."""
        return len(self._cells)

    def cell(self, assignments: Mapping[str, Any]) -> _CubeCell | None:
        """The cell for ``assignments`` (None when empty or not materialised)."""
        columns = tuple(sorted(assignments))
        if len(columns) > self._max_arity:
            return None
        values = tuple(assignments[c] for c in columns)
        return self._cells.get((columns, values))

    def average(self, assignments: Mapping[str, Any]) -> tuple[float | None, int]:
        """Average target value and support for a dimension-value combination."""
        cell = self.cell(assignments)
        if cell is None:
            return None, 0
        return cell.average, cell.count

    def cells_for_columns(self, columns: tuple[str, ...]):
        """Iterate (value tuple, cell) for one column combination."""
        key_columns = tuple(sorted(columns))
        for (cell_columns, values), cell in self._cells.items():
            if cell_columns == key_columns:
                yield values, cell


class CubeFactGenerator:
    """Serves candidate facts for any base scope from a shared data cube.

    Parameters
    ----------
    relation:
        The full relation (not pre-filtered to a query subset).
    max_extra_dimensions:
        Additional dimensions a fact may restrict beyond the base scope
        (the paper's default is two).
    max_base_dimensions:
        Maximal number of base-scope predicates expected (the configured
        query length); the cube materialises combinations up to
        ``max_base_dimensions + max_extra_dimensions`` columns.
    min_support:
        Minimal rows per fact.
    """

    def __init__(
        self,
        relation: SummarizationRelation,
        max_extra_dimensions: int = 2,
        max_base_dimensions: int = 2,
        min_support: int = 1,
    ):
        if max_extra_dimensions < 0 or max_base_dimensions < 0:
            raise ValueError("dimension limits must be non-negative")
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        self._relation = relation
        self._max_extra = max_extra_dimensions
        self._min_support = min_support
        self._cube = DataCube(relation, max_base_dimensions + max_extra_dimensions)

    @property
    def cube(self) -> DataCube:
        """The underlying data cube."""
        return self._cube

    def generate(self, base_scope: Mapping[str, Any] | Scope | None = None) -> GeneratedFacts:
        """Candidate facts for one query's base scope, served from the cube."""
        base = base_scope if isinstance(base_scope, Scope) else Scope(dict(base_scope or {}))
        base_assignments = base.assignments
        free_dimensions = sorted(
            dim for dim in self._relation.dimensions if not base.restricts(dim)
        )

        facts: list[Fact] = []
        by_group: dict[FactGroup, list[Fact]] = {}
        for arity in range(0, self._max_extra + 1):
            for extra_columns in combinations(free_dimensions, arity):
                # Group keys follow FactGenerator's convention: the *extra*
                # dimensions beyond the base scope identify the group.
                group = FactGroup(extra_columns)
                members = self._facts_for_columns(base_assignments, extra_columns)
                if members:
                    by_group[group] = members
                    facts.extend(members)
        return GeneratedFacts(facts=facts, by_group=by_group, base_scope=base)

    def _facts_for_columns(
        self,
        base_assignments: dict[str, Any],
        extra_columns: tuple[str, ...],
    ) -> list[Fact]:
        """Facts restricting the base columns plus exactly ``extra_columns``."""
        all_columns = tuple(sorted(tuple(base_assignments) + extra_columns))
        facts = []
        for values, cell in self._cube.cells_for_columns(all_columns):
            assignments = dict(zip(all_columns, values))
            if any(assignments[c] != v for c, v in base_assignments.items()):
                continue
            if cell.count < self._min_support:
                continue
            facts.append(
                Fact(scope=Scope(assignments), value=cell.average, support=cell.count)
            )
        return facts
