"""Per-group utility upper bounds (Section VI-B).

Adding a fact can at most reduce the deviation of the rows within its
scope to zero.  Summing the *current* deviation over each value
combination of a fact group therefore yields, for every fact in the
group, an upper bound on its utility gain.  The pruning mechanism
compares the maximum such bound of a *target* group against the best
realised gain of a *source* group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.utility import ExpectationState, UtilityEvaluator
from repro.facts.groups import FactGroup


@dataclass(frozen=True)
class GroupBound:
    """Utility-gain bounds for one fact group.

    ``per_scope`` maps each value combination (tuple in group-dimension
    order) to its bound; ``maximum`` is the largest of those (0.0 for an
    empty group).
    """

    group: FactGroup
    per_scope: dict[tuple, float]
    maximum: float

    @property
    def scope_count(self) -> int:
        """Number of distinct value combinations (facts) in the group."""
        return len(self.per_scope)


def group_utility_bounds(
    evaluator: UtilityEvaluator,
    group: FactGroup,
    state: ExpectationState | None = None,
) -> GroupBound:
    """Compute utility-gain bounds for every fact in ``group``.

    ``state`` captures the current greedy speech; bounds are computed
    against the current per-row deviation (against the prior when
    ``state`` is None).
    """
    per_scope = evaluator.group_deviation_bounds(list(group.dimensions), state)
    maximum = max(per_scope.values(), default=0.0)
    return GroupBound(group=group, per_scope=dict(per_scope), maximum=maximum)


def bounds_for_groups(
    evaluator: UtilityEvaluator,
    groups: Sequence[FactGroup],
    state: ExpectationState | None = None,
) -> dict[FactGroup, GroupBound]:
    """Bounds for several fact groups, keyed by group."""
    return {group: group_utility_bounds(evaluator, group, state) for group in groups}
