"""Synthetic ACS New York disability extract.

The paper's ACS NY dataset has 3 dimensions and 6 targets (Table I) and
is used for the A-H / A-V / A-C scenarios (hearing loss, visual
impairment, cognitive impairment prevalence) and for the user studies
of Figures 5, 6 and Table II (visual impairment by New York City
borough and age group).

Each synthetic row represents a small survey area; the targets are
prevalence rates per 1,000 persons.  Effect sizes follow the values
quoted in Table II of the paper: visual impairment around 80 per 1,000
for elders, 17 for adults, 3 for teenagers, with mild borough effects —
so the "best" speeches found by the algorithms resemble the paper's.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, SyntheticDataset, categorical_choice, make_rng
from repro.relational.column import Column
from repro.relational.table import Table

BOROUGHS = ["Brooklyn", "Manhattan", "Queens", "Staten Island", "Bronx"]
AGE_GROUPS = ["Teenagers", "Adults", "Elders"]
SEXES = ["Female", "Male"]

#: Borough-level multipliers (small effects compared to age).
_BOROUGH_FACTOR = {
    "Brooklyn": 1.10,
    "Manhattan": 0.85,
    "Queens": 1.00,
    "Staten Island": 0.95,
    "Bronx": 1.20,
}

#: Base prevalence per 1,000 by age group for each target column.
_AGE_BASE = {
    "visual_impairment": {"Teenagers": 4.0, "Adults": 17.0, "Elders": 80.0},
    "hearing_impairment": {"Teenagers": 3.0, "Adults": 20.0, "Elders": 110.0},
    "cognitive_impairment": {"Teenagers": 12.0, "Adults": 25.0, "Elders": 70.0},
    "ambulatory_difficulty": {"Teenagers": 3.0, "Adults": 30.0, "Elders": 160.0},
    "selfcare_difficulty": {"Teenagers": 2.0, "Adults": 10.0, "Elders": 55.0},
    "independent_living_difficulty": {"Teenagers": 1.0, "Adults": 15.0, "Elders": 120.0},
}

SPEC = DatasetSpec(
    key="acs",
    title="ACS NY",
    dimensions=("borough", "age_group", "sex"),
    targets=tuple(_AGE_BASE),
    default_target="visual_impairment",
    paper_size="2 MB",
    paper_dimensions=3,
    paper_targets=6,
)


def generate_acs(num_rows: int = 900, seed: int = 20210318) -> SyntheticDataset:
    """Generate the synthetic ACS NY dataset.

    Parameters
    ----------
    num_rows:
        Number of survey-area rows.
    seed:
        RNG seed (the default matches the other generators so that
        experiment outputs are reproducible).
    """
    rng = make_rng(seed)
    boroughs = categorical_choice(rng, BOROUGHS, num_rows, weights=[31, 19, 27, 6, 17])
    ages = categorical_choice(rng, AGE_GROUPS, num_rows, weights=[18, 58, 24])
    sexes = categorical_choice(rng, SEXES, num_rows)

    target_columns = []
    for target, base_by_age in _AGE_BASE.items():
        values = []
        for borough, age, sex in zip(boroughs, ages, sexes):
            base = base_by_age[age] * _BOROUGH_FACTOR[borough]
            if sex == "Male" and target == "hearing_impairment":
                base *= 1.25
            noise = rng.normal(0.0, 0.08 * base + 0.5)
            values.append(max(0.0, base + noise))
        target_columns.append(Column.numeric(target, values))

    table = Table(
        "acs_ny",
        [
            Column.categorical("borough", boroughs),
            Column.categorical("age_group", ages),
            Column.categorical("sex", sexes),
            *target_columns,
        ],
    )
    return SyntheticDataset(spec=SPEC, table=table, seed=seed)
