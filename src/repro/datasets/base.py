"""Shared plumbing for the synthetic dataset generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.model import SummarizationRelation
from repro.relational.table import Table


@dataclass(frozen=True)
class DatasetSpec:
    """Describes a dataset's schema from the summarizer's point of view.

    Attributes
    ----------
    key:
        Short identifier ("acs", "flights", "stackoverflow", "primaries").
    title:
        Human-readable name as used in the paper's Table I.
    dimensions:
        Dimension columns available for predicates and fact scopes.
    targets:
        Numeric target columns that can be summarized.
    default_target:
        Target used when no explicit choice is made.
    paper_size:
        The size the paper reports for the original dataset (informational).
    paper_dimensions / paper_targets:
        Counts reported in Table I (informational; the synthetic
        generator may expose additional target columns).
    """

    key: str
    title: str
    dimensions: tuple[str, ...]
    targets: tuple[str, ...]
    default_target: str
    paper_size: str = ""
    paper_dimensions: int = 0
    paper_targets: int = 0


@dataclass
class SyntheticDataset:
    """A generated table together with its schema description."""

    spec: DatasetSpec
    table: Table
    seed: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        """Number of generated rows."""
        return self.table.num_rows

    def relation(self, target: str | None = None) -> SummarizationRelation:
        """Build a summarization relation for one target column."""
        chosen = target or self.spec.default_target
        if chosen not in self.spec.targets:
            raise ValueError(
                f"unknown target {chosen!r} for dataset {self.spec.key!r}; "
                f"available: {list(self.spec.targets)}"
            )
        return SummarizationRelation(self.table, list(self.spec.dimensions), chosen)

    def dimension_domains(self) -> dict[str, list]:
        """Distinct values of every dimension column."""
        return {
            dim: self.table.column(dim).distinct_values()
            for dim in self.spec.dimensions
        }


def make_rng(seed: int) -> np.random.Generator:
    """Create the seeded RNG all generators use (deterministic outputs)."""
    return np.random.default_rng(seed)


def categorical_choice(
    rng: np.random.Generator,
    values: Sequence[str],
    size: int,
    weights: Sequence[float] | None = None,
) -> list[str]:
    """Draw ``size`` categorical values with optional weights."""
    if weights is not None:
        probabilities = np.asarray(weights, dtype=float)
        probabilities = probabilities / probabilities.sum()
    else:
        probabilities = None
    drawn = rng.choice(len(values), size=size, p=probabilities)
    return [values[i] for i in drawn]
