"""Synthetic flight delay / cancellation dataset.

The paper's flight dataset (Kaggle "flight-delays", 565 MB, 6
dimensions, 1 target) feeds the F-C (cancellation) and F-D (delay)
scenarios, the public Google Assistant deployment, and the baseline
comparison of Figure 11 (queries about flights overall, in the
Northeast, and in the Northeast in Winter).

The synthetic generator keeps the same dimensional structure —
airline, origin region/state, destination region, season, time of day,
day type — and plants the effects the paper's example speeches mention:
cancellations increase markedly in February/Winter and are lower in the
West; delays peak in Summer evenings.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, SyntheticDataset, categorical_choice, make_rng
from repro.relational.column import Column
from repro.relational.table import Table

AIRLINES = ["AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9"]
REGIONS = ["Northeast", "South", "Midwest", "West"]
SEASONS = ["Winter", "Spring", "Summer", "Fall"]
MONTHS_BY_SEASON = {
    "Winter": ["December", "January", "February"],
    "Spring": ["March", "April", "May"],
    "Summer": ["June", "July", "August"],
    "Fall": ["September", "October", "November"],
}
TIMES_OF_DAY = ["Morning", "Afternoon", "Evening", "Night"]
DAY_TYPES = ["Weekday", "Weekend"]

_SEASON_CANCEL = {"Winter": 0.065, "Spring": 0.035, "Summer": 0.045, "Fall": 0.030}
_REGION_CANCEL = {"Northeast": 1.35, "South": 1.00, "Midwest": 1.10, "West": 0.60}
_MONTH_CANCEL_BOOST = {"February": 1.8, "January": 1.3, "December": 1.2}

_SEASON_DELAY = {"Winter": 14.0, "Spring": 9.0, "Summer": 18.0, "Fall": 8.0}
_REGION_DELAY = {"Northeast": 1.30, "South": 1.05, "Midwest": 1.00, "West": 0.80}
_TIME_DELAY = {"Morning": 0.7, "Afternoon": 1.0, "Evening": 1.5, "Night": 1.1}

SPEC = DatasetSpec(
    key="flights",
    title="Flights",
    dimensions=("airline", "origin_region", "destination_region", "season", "month", "time_of_day"),
    targets=("cancellation", "delay_minutes"),
    default_target="cancellation",
    paper_size="565 MB",
    paper_dimensions=6,
    paper_targets=1,
)


def generate_flights(num_rows: int = 3000, seed: int = 20210318) -> SyntheticDataset:
    """Generate the synthetic flights dataset.

    ``cancellation`` is a 0/1 indicator (its scope averages are the
    cancellation probabilities the deployed system reports);
    ``delay_minutes`` is a non-negative delay.
    """
    rng = make_rng(seed)
    airlines = categorical_choice(rng, AIRLINES, num_rows, weights=[22, 20, 17, 18, 8, 6, 5, 4])
    origins = categorical_choice(rng, REGIONS, num_rows, weights=[28, 30, 22, 20])
    destinations = categorical_choice(rng, REGIONS, num_rows, weights=[26, 29, 22, 23])
    seasons = categorical_choice(rng, SEASONS, num_rows)
    months = [
        MONTHS_BY_SEASON[season][int(rng.integers(0, 3))] for season in seasons
    ]
    times = categorical_choice(rng, TIMES_OF_DAY, num_rows, weights=[30, 28, 27, 15])
    day_types = categorical_choice(rng, DAY_TYPES, num_rows, weights=[72, 28])

    cancellations = []
    delays = []
    for airline, origin, season, month, tod in zip(airlines, origins, seasons, months, times):
        cancel_probability = _SEASON_CANCEL[season] * _REGION_CANCEL[origin]
        cancel_probability *= _MONTH_CANCEL_BOOST.get(month, 1.0)
        cancel_probability = min(0.5, cancel_probability)
        cancelled = 1.0 if rng.random() < cancel_probability else 0.0
        cancellations.append(cancelled)

        if cancelled:
            delays.append(0.0)
            continue
        mean_delay = _SEASON_DELAY[season] * _REGION_DELAY[origin] * _TIME_DELAY[tod]
        if airline in ("NK", "F9"):
            mean_delay *= 1.3
        delay = max(0.0, rng.normal(mean_delay, 0.6 * mean_delay + 2.0))
        delays.append(delay)

    table = Table(
        "flights",
        [
            Column.categorical("airline", airlines),
            Column.categorical("origin_region", origins),
            Column.categorical("destination_region", destinations),
            Column.categorical("season", seasons),
            Column.categorical("month", months),
            Column.categorical("time_of_day", times),
            Column.categorical("day_type", day_types),
            Column.numeric("cancellation", cancellations),
            Column.numeric("delay_minutes", delays),
        ],
    )
    return SyntheticDataset(spec=SPEC, table=table, seed=seed)
