"""Synthetic democratic-primaries polling dataset.

The paper's primaries dataset (FiveThirtyEight, 6 MB, 5 dimensions,
1 target) was publicly queryable for two months during the primary
season.  The synthetic generator produces poll-result rows with the
same dimensional structure: candidate, state region, month, poll type
and population segment, with candidate support as the target.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, SyntheticDataset, categorical_choice, make_rng
from repro.relational.column import Column
from repro.relational.table import Table

CANDIDATES = ["Biden", "Sanders", "Warren", "Buttigieg", "Klobuchar", "Bloomberg"]
STATE_REGIONS = ["Northeast", "South", "Midwest", "West"]
MONTHS = ["November", "December", "January", "February", "March"]
POLL_TYPES = ["Live phone", "Online", "IVR"]
POPULATIONS = ["Likely voters", "Registered voters", "All adults"]

_CANDIDATE_BASE = {
    "Biden": 27.0,
    "Sanders": 23.0,
    "Warren": 14.0,
    "Buttigieg": 10.0,
    "Klobuchar": 5.0,
    "Bloomberg": 8.0,
}
_REGION_EFFECT = {
    ("Biden", "South"): 8.0,
    ("Sanders", "West"): 6.0,
    ("Warren", "Northeast"): 4.0,
    ("Buttigieg", "Midwest"): 5.0,
    ("Klobuchar", "Midwest"): 4.0,
    ("Bloomberg", "South"): 2.0,
}
_MONTH_TREND = {
    "Sanders": {"November": -3.0, "December": -1.0, "January": 1.0, "February": 4.0, "March": 2.0},
    "Biden": {"November": 1.0, "December": 0.0, "January": -2.0, "February": -4.0, "March": 6.0},
    "Bloomberg": {"November": -6.0, "December": -3.0, "January": 0.0, "February": 4.0, "March": -2.0},
}

SPEC = DatasetSpec(
    key="primaries",
    title="Primaries",
    dimensions=("candidate", "state_region", "month", "poll_type", "population"),
    targets=("support_percentage",),
    default_target="support_percentage",
    paper_size="6 MB",
    paper_dimensions=5,
    paper_targets=1,
)


def generate_primaries(num_rows: int = 2000, seed: int = 20210318) -> SyntheticDataset:
    """Generate the synthetic primaries polling dataset."""
    rng = make_rng(seed)
    candidates = categorical_choice(rng, CANDIDATES, num_rows)
    regions = categorical_choice(rng, STATE_REGIONS, num_rows, weights=[24, 32, 24, 20])
    months = categorical_choice(rng, MONTHS, num_rows, weights=[15, 18, 22, 25, 20])
    poll_types = categorical_choice(rng, POLL_TYPES, num_rows, weights=[35, 50, 15])
    populations = categorical_choice(rng, POPULATIONS, num_rows, weights=[45, 40, 15])

    support = []
    for candidate, region, month in zip(candidates, regions, months):
        value = _CANDIDATE_BASE[candidate]
        value += _REGION_EFFECT.get((candidate, region), 0.0)
        value += _MONTH_TREND.get(candidate, {}).get(month, 0.0)
        value = max(0.5, rng.normal(value, 3.0))
        support.append(min(value, 70.0))

    table = Table(
        "primaries",
        [
            Column.categorical("candidate", candidates),
            Column.categorical("state_region", regions),
            Column.categorical("month", months),
            Column.categorical("poll_type", poll_types),
            Column.categorical("population", populations),
            Column.numeric("support_percentage", support),
        ],
    )
    return SyntheticDataset(spec=SPEC, table=table, seed=seed)
