"""Dataset registry and Table-I-style overview."""

from __future__ import annotations

from typing import Callable

from repro.datasets.acs import SPEC as ACS_SPEC, generate_acs
from repro.datasets.base import DatasetSpec, SyntheticDataset
from repro.datasets.flights import SPEC as FLIGHTS_SPEC, generate_flights
from repro.datasets.primaries import SPEC as PRIMARIES_SPEC, generate_primaries
from repro.datasets.stackoverflow import SPEC as STACKOVERFLOW_SPEC, generate_stackoverflow

_GENERATORS: dict[str, Callable[..., SyntheticDataset]] = {
    "acs": generate_acs,
    "flights": generate_flights,
    "stackoverflow": generate_stackoverflow,
    "primaries": generate_primaries,
}

_SPECS: dict[str, DatasetSpec] = {
    "acs": ACS_SPEC,
    "flights": FLIGHTS_SPEC,
    "stackoverflow": STACKOVERFLOW_SPEC,
    "primaries": PRIMARIES_SPEC,
}

#: Default row counts per dataset, scaled so the full experiment suite
#: runs on a laptop while preserving the relative dataset sizes of Table I.
_DEFAULT_ROWS = {
    "acs": 900,
    "flights": 3000,
    "stackoverflow": 4000,
    "primaries": 2000,
}


def available_datasets() -> list[str]:
    """Keys of all synthetic datasets."""
    return sorted(_GENERATORS)


def load_dataset(key: str, num_rows: int | None = None, seed: int = 20210318) -> SyntheticDataset:
    """Generate a dataset by key ("acs", "flights", "stackoverflow", "primaries")."""
    try:
        generator = _GENERATORS[key]
    except KeyError:
        raise KeyError(
            f"unknown dataset {key!r}; available: {available_datasets()}"
        ) from None
    rows = num_rows if num_rows is not None else _DEFAULT_ROWS[key]
    return generator(num_rows=rows, seed=seed)


def dataset_overview(num_rows: dict[str, int] | None = None) -> list[dict]:
    """Rows of the Table I reproduction (dataset, size, #dims, #targets).

    Both the paper-reported values and the synthetic-replica values are
    included so the experiment harness can print them side by side.
    """
    overview = []
    for key in available_datasets():
        spec = _SPECS[key]
        rows = (num_rows or {}).get(key, _DEFAULT_ROWS[key])
        dataset = load_dataset(key, num_rows=rows)
        overview.append(
            {
                "dataset": spec.title,
                "paper_size": spec.paper_size,
                "paper_dims": spec.paper_dimensions,
                "paper_targets": spec.paper_targets,
                "synthetic_rows": dataset.num_rows,
                "synthetic_dims": len(spec.dimensions),
                "synthetic_targets": len(spec.targets),
            }
        )
    return overview
