"""Synthetic datasets mirroring the paper's four evaluation datasets.

The original evaluation (Table I) uses four public datasets: an ACS
disability extract for New York, the 2019 Stack Overflow developer
survey, a Kaggle flight-delay dataset and FiveThirtyEight's democratic
primaries data.  Those files are not bundled here; instead each module
provides a seeded synthetic generator that reproduces the *structure*
the algorithms care about — the number of dimensions, realistic domain
sizes, and target distributions with strong dimension effects — so the
relative behaviour of the algorithms (fact counts, pruning
effectiveness, scaling) matches the paper.  Real CSV files can be
loaded through :func:`repro.relational.read_csv` instead.
"""

from repro.datasets.base import DatasetSpec, SyntheticDataset
from repro.datasets.acs import generate_acs
from repro.datasets.flights import generate_flights
from repro.datasets.stackoverflow import generate_stackoverflow
from repro.datasets.primaries import generate_primaries
from repro.datasets.registry import available_datasets, dataset_overview, load_dataset

__all__ = [
    "DatasetSpec",
    "SyntheticDataset",
    "generate_acs",
    "generate_flights",
    "generate_stackoverflow",
    "generate_primaries",
    "available_datasets",
    "load_dataset",
    "dataset_overview",
]
