"""Synthetic Stack Overflow developer survey dataset.

The paper's Stack Overflow dataset (2019 developer survey, 197 MB,
7 dimensions, 6 targets) backs the S-C / S-O / S-S scenarios
(competence, optimism, job satisfaction) and the visual-vs-voice user
study of Figure 8.  This generator reproduces the schema shape: seven
categorical dimensions with realistic domain sizes and six numeric
targets on survey-style scales, with strong effects tied to experience,
organisation size and employment status.
"""

from __future__ import annotations

from repro.datasets.base import DatasetSpec, SyntheticDataset, categorical_choice, make_rng
from repro.relational.column import Column
from repro.relational.table import Table

REGIONS = ["North America", "Europe", "Asia", "South America", "Africa", "Oceania"]
DEV_TYPES = ["Backend", "Frontend", "Full-stack", "Mobile", "Data science", "DevOps", "Embedded"]
EDUCATION = ["Self-taught", "Bachelor", "Master", "Doctorate"]
EXPERIENCE = ["0-2 years", "3-5 years", "6-10 years", "11-20 years", "20+ years"]
ORG_SIZES = ["1-19", "20-99", "100-499", "500-4999", "5000+"]
GENDERS = ["Man", "Woman", "Non-binary"]
EMPLOYMENT = ["Full-time", "Part-time", "Freelance", "Student"]

_EXPERIENCE_RANK = {level: rank for rank, level in enumerate(EXPERIENCE)}

SPEC = DatasetSpec(
    key="stackoverflow",
    title="Stack Overflow",
    dimensions=(
        "region",
        "dev_type",
        "education",
        "experience",
        "org_size",
        "gender",
        "employment",
    ),
    targets=(
        "competence",
        "optimism",
        "job_satisfaction",
        "salary_thousands",
        "hours_per_week",
        "remote_days",
    ),
    default_target="job_satisfaction",
    paper_size="197 MB",
    paper_dimensions=7,
    paper_targets=6,
)


def generate_stackoverflow(num_rows: int = 4000, seed: int = 20210318) -> SyntheticDataset:
    """Generate the synthetic developer-survey dataset."""
    rng = make_rng(seed)
    regions = categorical_choice(rng, REGIONS, num_rows, weights=[30, 34, 22, 7, 4, 3])
    dev_types = categorical_choice(rng, DEV_TYPES, num_rows, weights=[20, 16, 28, 12, 10, 9, 5])
    education = categorical_choice(rng, EDUCATION, num_rows, weights=[22, 48, 25, 5])
    experience = categorical_choice(rng, EXPERIENCE, num_rows, weights=[22, 28, 26, 17, 7])
    org_sizes = categorical_choice(rng, ORG_SIZES, num_rows, weights=[24, 24, 22, 18, 12])
    genders = categorical_choice(rng, GENDERS, num_rows, weights=[88, 10, 2])
    employment = categorical_choice(rng, EMPLOYMENT, num_rows, weights=[74, 8, 11, 7])

    competence = []
    optimism = []
    satisfaction = []
    salary = []
    hours = []
    remote = []
    for region, dev, edu, exp, org, gender, emp in zip(
        regions, dev_types, education, experience, org_sizes, genders, employment
    ):
        exp_rank = _EXPERIENCE_RANK[exp]
        # Competence (1-10) grows with experience.
        competence.append(_clip(rng.normal(4.5 + 1.1 * exp_rank, 1.0), 1.0, 10.0))
        # Optimism (1-10) declines slightly with experience, higher for students.
        base_optimism = 7.5 - 0.4 * exp_rank + (0.8 if emp == "Student" else 0.0)
        optimism.append(_clip(rng.normal(base_optimism, 1.2), 1.0, 10.0))
        # Job satisfaction (1-10) depends on org size and employment.
        base_satisfaction = 6.0 + {"1-19": 0.6, "20-99": 0.4, "100-499": 0.0,
                                   "500-4999": -0.2, "5000+": -0.4}[org]
        base_satisfaction += {"Full-time": 0.3, "Part-time": -0.2,
                              "Freelance": 0.5, "Student": -0.5}[emp]
        satisfaction.append(_clip(rng.normal(base_satisfaction, 1.3), 1.0, 10.0))
        # Salary (thousands, normalised) depends on region and experience.
        region_base = {"North America": 95, "Europe": 65, "Asia": 35,
                       "South America": 30, "Africa": 25, "Oceania": 75}[region]
        salary.append(max(5.0, rng.normal(region_base + 9 * exp_rank, 18.0)))
        # Working hours per week.
        hours.append(_clip(rng.normal(41.0 + (2.0 if emp == "Freelance" else 0.0), 5.0), 5.0, 80.0))
        # Remote days per week, higher for DevOps/Data science and freelancers.
        base_remote = 1.4 + (1.2 if emp == "Freelance" else 0.0)
        base_remote += 0.5 if dev in ("DevOps", "Data science") else 0.0
        remote.append(_clip(rng.normal(base_remote, 1.0), 0.0, 5.0))

    table = Table(
        "stackoverflow",
        [
            Column.categorical("region", regions),
            Column.categorical("dev_type", dev_types),
            Column.categorical("education", education),
            Column.categorical("experience", experience),
            Column.categorical("org_size", org_sizes),
            Column.categorical("gender", genders),
            Column.categorical("employment", employment),
            Column.numeric("competence", competence),
            Column.numeric("optimism", optimism),
            Column.numeric("job_satisfaction", satisfaction),
            Column.numeric("salary_thousands", salary),
            Column.numeric("hours_per_week", hours),
            Column.numeric("remote_days", remote),
        ],
    )
    return SyntheticDataset(spec=SPEC, table=table, seed=seed)


def _clip(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval [low, high]."""
    return max(low, min(high, value))
