"""Typed failures of the compact snapshot format.

Every way a snapshot file can be unusable maps to one subclass, so
callers (shard respawn, checkpoint recovery, tests) can catch
:class:`SnapshotError` and *know* the file was rejected rather than
silently mis-read: a corrupt snapshot must never produce wrong matches.
"""

from __future__ import annotations


class SnapshotError(Exception):
    """Base class: a compact-store snapshot cannot be attached."""


class SnapshotFormatError(SnapshotError):
    """The file is not a compact-store snapshot (bad magic)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an incompatible format version."""


class SnapshotCorruptionError(SnapshotError):
    """The snapshot is damaged: checksum mismatch, truncation, or an
    inconsistent section table."""
