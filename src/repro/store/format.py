"""Checksummed on-disk snapshots of the compact store.

``freeze`` writes a :class:`CompactSpeechStore`'s sections into one
file; ``attach`` maps that file read-only and wraps numpy views over
the mapped pages — no per-speech deserialisation, so attach cost is
O(pools + checksum scan) regardless of speech count, and N processes
attaching the same file share a single page-cache copy.

File layout (all integers little-endian)::

    0   magic            8 bytes  b"RVSNAP01"
    8   format version   u32
    12  toc crc32        u32   over the TOC JSON bytes
    16  toc length       u64
    24  payload crc32    u32   over file[44 + toc length : file length]
    28  reserved         u32   (zero)
    32  file length      u64   total size the file must have
    40  header crc32     u32   over bytes [0, 40)
    44  TOC JSON, then zero padding to an 8-byte boundary, then the
        section payload (each section 8-aligned)

The TOC records, per section, its payload-relative offset, byte length,
dtype and element count, plus snapshot metadata (speech count, the
publisher's snapshot version).  Every byte of the file is covered by
exactly one of the three CRCs, so the corruption matrix is total: any
flipped byte, truncated tail, bad magic or version skew raises a typed
:class:`~repro.store.errors.SnapshotError` — an attached snapshot can
never silently return wrong matches.

Freezing is deterministic: the same store contents always produce the
same bytes, which lets shards republish the same version idempotently
(identical content, atomic rename) and lets the regression gate treat
bytes/speech as an absolute metric.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.store.columnar import CompactSpeechStore
from repro.store.errors import (
    SnapshotCorruptionError,
    SnapshotFormatError,
    SnapshotVersionError,
)

MAGIC = b"RVSNAP01"
SNAPSHOT_FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sIIQIIQ")  # magic .. file length (40 bytes)
_HEADER_CRC = struct.Struct("<I")
HEADER_SIZE = _HEADER.size + _HEADER_CRC.size  # 44

#: dtype codes allowed in a TOC; "bytes" marks an opaque blob section.
_DTYPES = {"<i4", "<i8", "<f8", "<u8"}

#: Sections every snapshot must carry (the compact layout's schema).
_REQUIRED = frozenset(
    {
        "targets_blob",
        "targets_off",
        "columns_blob",
        "columns_off",
        "algorithms_blob",
        "algorithms_off",
        "values_blob",
        "values_off",
        "target_id",
        "algorithm_id",
        "utility",
        "scaled_utility",
        "text_blob",
        "text_off",
        "q_off",
        "q_col",
        "q_val",
        "f_off",
        "fact_value",
        "fact_support",
        "s_off",
        "s_col",
        "s_val",
        "key_digest",
        "key_sorted_id",
        "post_digest",
        "post_off",
        "post_ids",
        "bucket_target",
        "bucket_length",
        "bucket_off",
        "bucket_ids",
    }
)


def _align8(value: int) -> int:
    return (value + 7) & ~7


def _section_bytes(payload: Any) -> tuple[bytes, str, int]:
    """(raw bytes, dtype code, element count) for one section."""
    if isinstance(payload, np.ndarray):
        dtype = payload.dtype.newbyteorder("<")
        array = np.ascontiguousarray(payload, dtype=dtype)
        return array.tobytes(), dtype.str, len(array)
    raw = bytes(payload)
    return raw, "bytes", len(raw)


def freeze(
    store: "CompactSpeechStore | Any",
    path: str | Path,
    *,
    snapshot_version: int | None = None,
) -> Path:
    """Write ``store`` as a compact snapshot file (atomically).

    ``store`` may be a mutable :class:`SpeechStore` (compacted first) or
    an existing :class:`CompactSpeechStore`.  The file appears at
    ``path`` only when complete: content goes to a temporary sibling
    which is fsynced and renamed over the target.
    """
    compacted = CompactSpeechStore.from_store(store)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    toc_sections: dict[str, dict[str, Any]] = {}
    chunks: list[bytes] = []
    cursor = 0
    for name in sorted(compacted.sections()):
        raw, dtype, count = _section_bytes(compacted.sections()[name])
        aligned = _align8(cursor)
        if aligned > cursor:
            chunks.append(b"\x00" * (aligned - cursor))
            cursor = aligned
        toc_sections[name] = {
            "offset": cursor,
            "length": len(raw),
            "dtype": dtype,
            "count": count,
        }
        chunks.append(raw)
        cursor += len(raw)
    payload = b"".join(chunks)

    toc = {
        "sections": toc_sections,
        "meta": {
            "speeches": len(compacted),
            "snapshot_version": snapshot_version,
        },
    }
    toc_bytes = json.dumps(toc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    payload_start = _align8(HEADER_SIZE + len(toc_bytes))
    gap = b"\x00" * (payload_start - HEADER_SIZE - len(toc_bytes))
    file_length = payload_start + len(payload)

    header = _HEADER.pack(
        MAGIC,
        SNAPSHOT_FORMAT_VERSION,
        zlib.crc32(toc_bytes),
        len(toc_bytes),
        zlib.crc32(gap + payload),
        0,
        file_length,
    )
    header += _HEADER_CRC.pack(zlib.crc32(header))

    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(toc_bytes)
        handle.write(gap)
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    directory = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory)
    finally:
        os.close(directory)
    return path


def attach(path: str | Path) -> CompactSpeechStore:
    """Open a frozen snapshot via mmap, verifying every checksum.

    Raises :class:`SnapshotFormatError` when the file is not a snapshot,
    :class:`SnapshotVersionError` on format-version skew and
    :class:`SnapshotCorruptionError` on any checksum mismatch,
    truncation or inconsistent section table.
    """
    path = Path(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotCorruptionError(f"cannot open snapshot {path}: {exc}") from exc
    try:
        size = os.fstat(handle.fileno()).st_size
        if size < HEADER_SIZE:
            prefix = handle.read(min(size, len(MAGIC)))
            if prefix != MAGIC[: len(prefix)]:
                raise SnapshotFormatError(f"{path} is not a compact-store snapshot")
            raise SnapshotCorruptionError(
                f"snapshot {path} is truncated ({size} bytes < {HEADER_SIZE} header)"
            )
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except SnapshotFormatError:
        handle.close()
        raise
    except SnapshotCorruptionError:
        handle.close()
        raise
    except (OSError, ValueError) as exc:
        handle.close()
        raise SnapshotCorruptionError(f"cannot map snapshot {path}: {exc}") from exc

    view: memoryview | None = None
    toc_view: memoryview | None = None
    sections: dict[str, Any] | None = None
    try:
        view = memoryview(mapped)
        (
            magic,
            version,
            toc_crc,
            toc_length,
            payload_crc,
            _reserved,
            file_length,
        ) = _HEADER.unpack(view[: _HEADER.size])
        if magic != MAGIC:
            raise SnapshotFormatError(f"{path} is not a compact-store snapshot")
        (header_crc,) = _HEADER_CRC.unpack(view[_HEADER.size : HEADER_SIZE])
        if zlib.crc32(view[: _HEADER.size]) != header_crc:
            raise SnapshotCorruptionError(f"snapshot {path} header checksum mismatch")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotVersionError(
                f"snapshot {path} has format version {version} "
                f"(expected {SNAPSHOT_FORMAT_VERSION})"
            )
        if file_length != size:
            raise SnapshotCorruptionError(
                f"snapshot {path} is {size} bytes but records {file_length}"
            )
        toc_end = HEADER_SIZE + toc_length
        if toc_end > size:
            raise SnapshotCorruptionError(
                f"snapshot {path} section table extends past end of file"
            )
        toc_view = view[HEADER_SIZE:toc_end]
        if zlib.crc32(toc_view) != toc_crc:
            raise SnapshotCorruptionError(
                f"snapshot {path} section-table checksum mismatch"
            )
        if zlib.crc32(view[toc_end:]) != payload_crc:
            raise SnapshotCorruptionError(f"snapshot {path} payload checksum mismatch")
        try:
            toc = json.loads(bytes(toc_view).decode("utf-8"))
            described = toc["sections"]
            meta = dict(toc["meta"])
        except (ValueError, KeyError, TypeError) as exc:
            raise SnapshotCorruptionError(
                f"snapshot {path} section table is not valid"
            ) from exc
        missing = _REQUIRED - set(described)
        if missing:
            raise SnapshotCorruptionError(
                f"snapshot {path} is missing sections: {sorted(missing)}"
            )

        payload_start = _align8(toc_end)
        sections = {}
        for name, entry in described.items():
            try:
                offset = payload_start + int(entry["offset"])
                length = int(entry["length"])
                dtype = str(entry["dtype"])
                count = int(entry["count"])
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotCorruptionError(
                    f"snapshot {path} section {name!r} entry is not valid"
                ) from exc
            if offset < payload_start or offset + length > size or length < 0:
                raise SnapshotCorruptionError(
                    f"snapshot {path} section {name!r} lies outside the file"
                )
            if dtype == "bytes":
                sections[name] = view[offset : offset + length]
                continue
            if dtype not in _DTYPES:
                raise SnapshotCorruptionError(
                    f"snapshot {path} section {name!r} has unknown dtype {dtype!r}"
                )
            if count * np.dtype(dtype).itemsize != length:
                raise SnapshotCorruptionError(
                    f"snapshot {path} section {name!r} count/length mismatch"
                )
            sections[name] = np.frombuffer(
                mapped, dtype=dtype, count=count, offset=offset
            )
        return CompactSpeechStore(sections, meta, backing=(mapped, handle))
    except Exception:
        # Release every view over the map before closing it — closing
        # with exported buffers alive raises BufferError and would mask
        # the typed error we are propagating.
        sections = None
        toc_view = None
        view = None
        try:
            mapped.close()
        except BufferError:  # pragma: no cover - a stray view pins the map
            pass  # the GC unmaps it once the last view dies
        handle.close()
        raise
