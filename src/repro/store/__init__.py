"""Compact, zero-copy speech store.

The read-optimized counterpart of
:class:`repro.system.speech_store.SpeechStore`: the same speeches and
the same matching semantics, held as flat columnar arrays that freeze
to a checksummed snapshot file and attach back via mmap with no
per-speech deserialisation — the layout that lets N shard processes
share one copy of a million-speech store.
"""

from repro.store.columnar import CompactSpeechStore
from repro.store.errors import (
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
)
from repro.store.format import SNAPSHOT_FORMAT_VERSION, attach, freeze
from repro.store.publish import SnapshotPublisher, snapshot_filename

__all__ = [
    "CompactSpeechStore",
    "SnapshotCorruptionError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "SNAPSHOT_FORMAT_VERSION",
    "attach",
    "freeze",
    "SnapshotPublisher",
    "snapshot_filename",
]
