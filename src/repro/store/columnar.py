"""Columnar, zero-copy speech store.

:class:`repro.system.speech_store.SpeechStore` is built for cheap
incremental mutation: dicts of Python lists, one boxed object per
posting entry.  A serving deployment holding 10⁵–10⁶ speeches pays for
that twice — once in resident memory (dict + list + PyLong overhead per
posting) and once per shard, because every spawned shard unpickles its
own private copy.

:class:`CompactSpeechStore` is the read-optimized counterpart: the same
speeches, the same lookup semantics, laid out as a handful of flat
numpy arrays over interned string pools so the whole store is a few
contiguous buffers.  The layout is what `format.py` writes to disk —
an attached snapshot wraps mmap-backed views of the *identical* arrays,
so N shard processes share one page-cache copy.

Layout
------
* **Pools** — targets, columns, algorithms and predicate/scope values
  are interned once; values are stored as canonical JSON so they decode
  back to the exact Python object (``int`` stays ``int``).
* **Speech columns** — per speech id: target id, algorithm id,
  utility/scaled-utility float64 columns, and the speech text as a
  slice of one UTF-8 blob (offset array + arena).
* **CSR structures** — stored-query predicates, facts and fact scopes
  are (offsets, column-id, value-id) compressed sparse rows; posting
  lists are a digest-sorted key array plus an offsets + int32-id pair,
  replacing the dict-of-list inverted index.
* **Probe tables** — exact-key lookups binary-search a sorted 64-bit
  key-digest array; every digest hit is verified against the stored
  predicates before it is trusted, so a (vanishingly unlikely) digest
  collision can never produce a wrong match.

Matching parity
---------------
``exact_match`` / ``best_match`` reproduce ``SpeechStore`` bit for bit:
exact key first, subset enumeration (longest stored query wins,
smallest speech id within a length) for short queries, posting-list
intersection with the zero-predicate fallback for long ones.  Speech
ids equal first-insertion order, so insertion-order tie-breaking
carries over exactly.  The property tests drive both stores plus the
``linear_best_match`` oracle over random workloads and require
byte-identical results.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from hashlib import blake2b
from itertools import combinations
from typing import Any, Iterator

import numpy as np

from repro.core.model import Fact, Scope, Speech
from repro.system.queries import DataQuery
from repro.system.speech_store import MatchResult, SpeechStore, StoredSpeech

#: Decoded :class:`StoredSpeech` objects kept hot per store instance.
#: Lookups concentrate on few speeches; an unbounded cache would slowly
#: rebuild the boxed store the compact layout exists to avoid.
_DECODE_CACHE_SIZE = 1024


# ----------------------------------------------------------------------
# Canonical value encoding
# ----------------------------------------------------------------------
def _canonical_token(value: Any) -> str:
    """A string whose equality mirrors Python ``==`` on predicate values.

    ``SpeechStore`` keys dicts with raw values, where ``1``, ``1.0`` and
    ``True`` collide (equal hash, equal value).  Digests must respect
    the same equality classes, so numeric values normalise to one
    canonical form before hashing; strings and ``None`` are tagged to
    keep ``"1"`` distinct from ``1``.
    """
    if isinstance(value, (bool, int, float)):
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        return "i:%d" % value if isinstance(value, int) else "f:" + repr(value)
    if isinstance(value, str):
        return "s:" + value
    if value is None:
        return "z"
    return "j:" + json.dumps(value, sort_keys=True, separators=(",", ":"))


def _value_json(value: Any) -> str:
    """Lossless storage form of a value (exact type round-trip)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _key_digest(target: str, pairs: list[tuple[str, str]]) -> int:
    """64-bit digest of an exact-match key ``(target, predicates)``.

    ``pairs`` are ``(column, canonical token)`` in the query's own
    (sorted-by-column) predicate order.
    """
    h = blake2b(digest_size=8)
    h.update(target.encode("utf-8"))
    h.update(b"\x1f")
    for column, token in pairs:
        h.update(column.encode("utf-8"))
        h.update(b"\x1e")
        h.update(token.encode("utf-8"))
        h.update(b"\x1d")
    return int.from_bytes(h.digest(), "little")


def _posting_digest(target: str, column: str, token: str) -> int:
    """64-bit digest of a posting key ``(target, column, value)``."""
    h = blake2b(digest_size=8)
    h.update(b"P\x1f")
    h.update(target.encode("utf-8"))
    h.update(b"\x1f")
    h.update(column.encode("utf-8"))
    h.update(b"\x1e")
    h.update(token.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


# ----------------------------------------------------------------------
# Build-side interning helpers
# ----------------------------------------------------------------------
class _Pool:
    """An append-only intern pool of strings."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self.items: list[str] = []

    def intern(self, item: str) -> int:
        idx = self._index.get(item)
        if idx is None:
            idx = len(self.items)
            self._index[item] = idx
            self.items.append(item)
        return idx

    def blob(self) -> tuple[bytes, np.ndarray]:
        offsets = np.zeros(len(self.items) + 1, dtype=np.int64)
        chunks = []
        position = 0
        for i, item in enumerate(self.items):
            encoded = item.encode("utf-8")
            chunks.append(encoded)
            position += len(encoded)
            offsets[i + 1] = position
        return b"".join(chunks), offsets


def _pool_sections(name: str, pool: _Pool, sections: dict[str, Any]) -> None:
    blob, offsets = pool.blob()
    sections[f"{name}_blob"] = blob
    sections[f"{name}_off"] = offsets


def _decode_pool(sections: dict[str, Any], name: str) -> list[str]:
    blob = memoryview(sections[f"{name}_blob"])
    offsets = sections[f"{name}_off"]
    return [
        bytes(blob[int(offsets[i]) : int(offsets[i + 1])]).decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


class CompactSpeechStore:
    """Read-only columnar speech store (built in memory or mmap-attached).

    Presents the read side of the :class:`SpeechStore` interface —
    ``exact_match`` / ``best_match`` / iteration / ``clone`` — so
    snapshots, the engine and the serving stack use either store
    interchangeably.  ``clone`` thaws back to a mutable
    :class:`SpeechStore` (maintenance builds on the mutable store and
    refreezes on swap).
    """

    def __init__(
        self,
        sections: dict[str, Any],
        meta: dict[str, Any],
        backing: tuple | None = None,
    ) -> None:
        self._sections = sections
        self._meta = meta
        # Keep the (mmap, file) pair alive as long as any array view.
        self._backing = backing
        self._targets = _decode_pool(sections, "targets")
        self._columns = _decode_pool(sections, "columns")
        self._algorithms = _decode_pool(sections, "algorithms")
        self._target_index = {t: i for i, t in enumerate(self._targets)}
        self._value_cache: dict[int, Any] = {}
        self._token_cache: dict[int, str] = {}
        self._decoded: OrderedDict[int, StoredSpeech] = OrderedDict()
        # (target id, stored length) -> bucket row.  O(#buckets), tiny.
        bucket_target = sections["bucket_target"]
        bucket_length = sections["bucket_length"]
        self._buckets = {
            (int(bucket_target[i]), int(bucket_length[i])): i
            for i in range(len(bucket_target))
        }

    # ------------------------------------------------------------------
    # Construction from a mutable store
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls, store: "SpeechStore | CompactSpeechStore"
    ) -> "CompactSpeechStore":
        """Compact a store; speech ids keep first-insertion order."""
        if isinstance(store, CompactSpeechStore):
            return store
        targets, columns, algorithms, values = _Pool(), _Pool(), _Pool(), _Pool()
        target_id: list[int] = []
        algorithm_id: list[int] = []
        utility: list[float] = []
        scaled_utility: list[float] = []
        text_chunks: list[bytes] = []
        text_off = [0]
        q_off = [0]
        q_col: list[int] = []
        q_val: list[int] = []
        f_off = [0]
        fact_value: list[float] = []
        fact_support: list[int] = []
        s_off = [0]
        s_col: list[int] = []
        s_val: list[int] = []
        key_digests: list[int] = []
        postings: dict[tuple[int, int, str], list[int]] = {}
        posting_digests: dict[tuple[int, int, str], int] = {}
        buckets: dict[tuple[int, int], list[int]] = {}

        for speech_id, stored in enumerate(store):
            target = stored.query.target
            tid = targets.intern(target)
            target_id.append(tid)
            algorithm_id.append(algorithms.intern(stored.algorithm))
            utility.append(float(stored.utility))
            scaled_utility.append(float(stored.scaled_utility))
            encoded = stored.text.encode("utf-8")
            text_chunks.append(encoded)
            text_off.append(text_off[-1] + len(encoded))

            pairs: list[tuple[str, str]] = []
            for column, value in stored.query.predicates:
                cid = columns.intern(column)
                q_col.append(cid)
                q_val.append(values.intern(_value_json(value)))
                token = _canonical_token(value)
                pairs.append((column, token))
                posting_key = (tid, cid, token)
                if posting_key not in postings:
                    postings[posting_key] = []
                    posting_digests[posting_key] = _posting_digest(
                        target, column, token
                    )
                postings[posting_key].append(speech_id)
            q_off.append(len(q_col))
            key_digests.append(_key_digest(target, pairs))
            buckets.setdefault((tid, stored.query.length), []).append(speech_id)

            for fact in stored.speech:
                fact_value.append(float(fact.value))
                fact_support.append(int(fact.support))
                for column, value in fact.scope:
                    s_col.append(columns.intern(column))
                    s_val.append(values.intern(_value_json(value)))
                s_off.append(len(s_col))
            f_off.append(len(fact_value))

        sections: dict[str, Any] = {}
        _pool_sections("targets", targets, sections)
        _pool_sections("columns", columns, sections)
        _pool_sections("algorithms", algorithms, sections)
        _pool_sections("values", values, sections)
        sections["target_id"] = np.asarray(target_id, dtype=np.int32)
        sections["algorithm_id"] = np.asarray(algorithm_id, dtype=np.int32)
        sections["utility"] = np.asarray(utility, dtype=np.float64)
        sections["scaled_utility"] = np.asarray(scaled_utility, dtype=np.float64)
        sections["text_blob"] = b"".join(text_chunks)
        sections["text_off"] = np.asarray(text_off, dtype=np.int64)
        sections["q_off"] = np.asarray(q_off, dtype=np.int64)
        sections["q_col"] = np.asarray(q_col, dtype=np.int32)
        sections["q_val"] = np.asarray(q_val, dtype=np.int32)
        sections["f_off"] = np.asarray(f_off, dtype=np.int64)
        sections["fact_value"] = np.asarray(fact_value, dtype=np.float64)
        sections["fact_support"] = np.asarray(fact_support, dtype=np.int64)
        sections["s_off"] = np.asarray(s_off, dtype=np.int64)
        sections["s_col"] = np.asarray(s_col, dtype=np.int32)
        sections["s_val"] = np.asarray(s_val, dtype=np.int32)

        digest_array = np.asarray(key_digests, dtype=np.uint64)
        order = np.argsort(digest_array, kind="stable")
        sections["key_digest"] = digest_array[order]
        sections["key_sorted_id"] = order.astype(np.int32)

        posting_keys = sorted(postings, key=lambda k: posting_digests[k])
        post_off = [0]
        post_ids: list[int] = []
        for key in posting_keys:
            post_ids.extend(postings[key])
            post_off.append(len(post_ids))
        sections["post_digest"] = np.asarray(
            [posting_digests[k] for k in posting_keys], dtype=np.uint64
        )
        sections["post_off"] = np.asarray(post_off, dtype=np.int64)
        sections["post_ids"] = np.asarray(post_ids, dtype=np.int32)

        bucket_keys = sorted(buckets)
        bucket_off = [0]
        bucket_ids: list[int] = []
        for key in bucket_keys:
            bucket_ids.extend(buckets[key])
            bucket_off.append(len(bucket_ids))
        sections["bucket_target"] = np.asarray(
            [k[0] for k in bucket_keys], dtype=np.int32
        )
        sections["bucket_length"] = np.asarray(
            [k[1] for k in bucket_keys], dtype=np.int32
        )
        sections["bucket_off"] = np.asarray(bucket_off, dtype=np.int64)
        sections["bucket_ids"] = np.asarray(bucket_ids, dtype=np.int32)

        return cls(sections, {"speeches": len(target_id)})

    # ------------------------------------------------------------------
    # Sizing / metadata
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sections["target_id"])

    @property
    def meta(self) -> dict[str, Any]:
        """Snapshot metadata (speech count, optional snapshot version)."""
        return dict(self._meta)

    @property
    def snapshot_version(self) -> int | None:
        """Version recorded at freeze time; None for in-memory builds."""
        version = self._meta.get("snapshot_version")
        return None if version is None else int(version)

    @property
    def nbytes(self) -> int:
        """Total bytes across all sections (the store's true footprint)."""
        total = 0
        for payload in self._sections.values():
            total += payload.nbytes if isinstance(payload, np.ndarray) else len(payload)
        return total

    def sections(self) -> dict[str, Any]:
        """The raw named sections (arrays and blobs) for serialisation."""
        return dict(self._sections)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _value(self, value_id: int) -> Any:
        value = self._value_cache.get(value_id)
        if value is None and value_id not in self._value_cache:
            blob = memoryview(self._sections["values_blob"])
            offsets = self._sections["values_off"]
            raw = bytes(blob[int(offsets[value_id]) : int(offsets[value_id + 1])])
            value = json.loads(raw.decode("utf-8"))
            self._value_cache[value_id] = value
        return value

    def _token(self, value_id: int) -> str:
        token = self._token_cache.get(value_id)
        if token is None:
            token = _canonical_token(self._value(value_id))
            self._token_cache[value_id] = token
        return token

    def _decode(self, speech_id: int) -> StoredSpeech:
        s = self._sections
        target = self._targets[int(s["target_id"][speech_id])]
        qa, qb = int(s["q_off"][speech_id]), int(s["q_off"][speech_id + 1])
        predicates = tuple(
            (self._columns[int(s["q_col"][i])], self._value(int(s["q_val"][i])))
            for i in range(qa, qb)
        )
        fa, fb = int(s["f_off"][speech_id]), int(s["f_off"][speech_id + 1])
        facts = []
        for f in range(fa, fb):
            sa, sb = int(s["s_off"][f]), int(s["s_off"][f + 1])
            scope = Scope(
                {
                    self._columns[int(s["s_col"][i])]: self._value(int(s["s_val"][i]))
                    for i in range(sa, sb)
                }
            )
            facts.append(
                Fact(
                    scope=scope,
                    value=float(s["fact_value"][f]),
                    support=int(s["fact_support"][f]),
                )
            )
        ta, tb = int(s["text_off"][speech_id]), int(s["text_off"][speech_id + 1])
        text = bytes(memoryview(s["text_blob"])[ta:tb]).decode("utf-8")
        return StoredSpeech(
            query=DataQuery(target=target, predicates=predicates),
            speech=Speech(facts),
            text=text,
            utility=float(s["utility"][speech_id]),
            scaled_utility=float(s["scaled_utility"][speech_id]),
            algorithm=self._algorithms[int(s["algorithm_id"][speech_id])],
        )

    def stored(self, speech_id: int) -> StoredSpeech:
        """The speech for one id, decoded through a small LRU cache."""
        cached = self._decoded.get(speech_id)
        if cached is not None:
            self._decoded.move_to_end(speech_id)
            return cached
        stored = self._decode(speech_id)
        self._decoded[speech_id] = stored
        if len(self._decoded) > _DECODE_CACHE_SIZE:
            self._decoded.popitem(last=False)
        return stored

    def __iter__(self) -> Iterator[StoredSpeech]:
        # Id order is first-insertion order, matching SpeechStore.
        for speech_id in range(len(self)):
            yield self._decode(speech_id)

    def targets(self) -> list[str]:
        """Target columns with at least one stored speech."""
        return sorted(self._targets)

    def speeches_for_target(self, target: str) -> list[StoredSpeech]:
        """All stored speeches for one target column (insertion order)."""
        tid = self._target_index.get(target)
        if tid is None:
            return []
        s = self._sections
        ids: list[int] = []
        for (bucket_tid, _length), row in self._buckets.items():
            if bucket_tid == tid:
                a, b = int(s["bucket_off"][row]), int(s["bucket_off"][row + 1])
                ids.extend(int(i) for i in s["bucket_ids"][a:b])
        return [self.stored(i) for i in sorted(ids)]

    def clone(self) -> SpeechStore:
        """Thaw into a mutable :class:`SpeechStore`.

        Re-adding every speech in id order reassigns identical ids, so
        the thawed store answers every query exactly like this one —
        which is what lets maintenance ``begin_build`` on an attached
        snapshot transparently.
        """
        store = SpeechStore()
        for stored in self:
            store.add(stored)
        return store

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _key_equals(
        self, speech_id: int, target: str, pairs: list[tuple[str, str]]
    ) -> bool:
        """Verify a digest hit against the stored predicates."""
        s = self._sections
        if self._targets[int(s["target_id"][speech_id])] != target:
            return False
        qa, qb = int(s["q_off"][speech_id]), int(s["q_off"][speech_id + 1])
        if qb - qa != len(pairs):
            return False
        for k, (column, token) in enumerate(pairs):
            if self._columns[int(s["q_col"][qa + k])] != column:
                return False
            if self._token(int(s["q_val"][qa + k])) != token:
                return False
        return True

    def _find_key(self, target: str, pairs: list[tuple[str, str]]) -> int:
        """Speech id stored under exactly this key, or -1."""
        digests = self._sections["key_digest"]
        digest = np.uint64(_key_digest(target, pairs))
        lo = int(np.searchsorted(digests, digest, side="left"))
        hi = int(np.searchsorted(digests, digest, side="right"))
        for i in range(lo, hi):
            speech_id = int(self._sections["key_sorted_id"][i])
            if self._key_equals(speech_id, target, pairs):
                return speech_id
        return -1

    def exact_match(self, query: DataQuery) -> StoredSpeech | None:
        """The speech pre-generated for exactly this query, if any."""
        if query.target not in self._target_index:
            return None
        pairs = [
            (column, _canonical_token(value)) for column, value in query.predicates
        ]
        speech_id = self._find_key(query.target, pairs)
        return None if speech_id < 0 else self.stored(speech_id)

    def best_match(self, query: DataQuery) -> MatchResult | None:
        """The most specific stored speech containing the queried subset.

        Same contract (and same tie-breaking) as
        :meth:`SpeechStore.best_match`.
        """
        exact = self.exact_match(query)
        if exact is not None:
            return MatchResult(stored=exact, exact=True, overlap=query.length)
        if query.length <= SpeechStore._SUBSET_ENUMERATION_MAX_LENGTH:
            return self._subset_enumeration_match(query)
        return self._postings_match(query)

    def _subset_enumeration_match(self, query: DataQuery) -> MatchResult | None:
        tid = self._target_index.get(query.target)
        if tid is None:
            return None
        pairs = [
            (column, _canonical_token(value)) for column, value in query.predicates
        ]
        for length in range(query.length - 1, -1, -1):
            if (tid, length) not in self._buckets:
                continue
            best_id = -1
            for subset in combinations(pairs, length):
                speech_id = self._find_key(query.target, list(subset))
                if speech_id >= 0 and (best_id < 0 or speech_id < best_id):
                    best_id = speech_id
            if best_id >= 0:
                return MatchResult(
                    stored=self.stored(best_id), exact=False, overlap=length
                )
        return None

    def _speech_has_predicate(
        self, speech_id: int, target: str, column: str, token: str
    ) -> bool:
        s = self._sections
        if self._targets[int(s["target_id"][speech_id])] != target:
            return False
        qa, qb = int(s["q_off"][speech_id]), int(s["q_off"][speech_id + 1])
        for i in range(qa, qb):
            if (
                self._columns[int(s["q_col"][i])] == column
                and self._token(int(s["q_val"][i])) == token
            ):
                return True
        return False

    def _postings_match(self, query: DataQuery) -> MatchResult | None:
        tid = self._target_index.get(query.target)
        if tid is None:
            return None
        s = self._sections
        post_digest = s["post_digest"]
        post_off = s["post_off"]
        post_ids = s["post_ids"]
        hits: dict[int, int] = {}
        for column, value in query.predicates:
            token = _canonical_token(value)
            digest = np.uint64(_posting_digest(query.target, column, token))
            lo = int(np.searchsorted(post_digest, digest, side="left"))
            hi = int(np.searchsorted(post_digest, digest, side="right"))
            for entry in range(lo, hi):
                a, b = int(post_off[entry]), int(post_off[entry + 1])
                # All ids in a posting list share one key: verifying the
                # first member screens out digest collisions.
                if not self._speech_has_predicate(
                    int(post_ids[a]), query.target, column, token
                ):
                    continue
                for speech_id in post_ids[a:b]:
                    speech_id = int(speech_id)
                    hits[speech_id] = hits.get(speech_id, 0) + 1
                break

        q_off = s["q_off"]
        best_id = -1
        best_length = -1
        for speech_id, count in hits.items():
            length = int(q_off[speech_id + 1]) - int(q_off[speech_id])
            if count != length:
                continue
            if length > best_length or (
                length == best_length and speech_id < best_id
            ):
                best_id = speech_id
                best_length = length

        if best_id < 0:
            overall = self._buckets.get((tid, 0))
            if overall is None:
                return None
            best_id = int(s["bucket_ids"][int(s["bucket_off"][overall])])
            best_length = 0
        return MatchResult(
            stored=self.stored(best_id), exact=False, overlap=best_length
        )
