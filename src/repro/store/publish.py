"""Publishing frozen snapshots into a versioned directory.

The serving stack's unit of store exchange is a *published snapshot*:
``store-v{version}.snap`` files in one directory, one per swap
generation.  The :class:`SnapshotPublisher` is the single owner of that
naming scheme:

* the router freezes the base store as version 0 before spawning
  shards;
* every shard's registry refreezes the maintained store on swap —
  freezing is deterministic and publishing is skip-if-present, so N
  shards publishing the same version is idempotent (identical bytes,
  atomic rename);
* a (re)spawned shard attaches the *newest* version present and only
  replays the append-log suffix past it.

Publishing never takes the serving path down: a failed freeze is
recorded on ``last_error`` and the previous snapshot keeps serving, and
``attach_latest`` falls back version by version past corrupt files.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any

from repro.store.columnar import CompactSpeechStore
from repro.store.errors import SnapshotError
from repro.store.format import attach, freeze

_SNAPSHOT_NAME = re.compile(r"^store-v(\d{12})\.snap$")


def snapshot_filename(version: int) -> str:
    """Canonical file name for one snapshot version."""
    return f"store-v{version:012d}.snap"


class SnapshotPublisher:
    """Owns one snapshot directory: freeze in, attach out, prune old."""

    def __init__(self, directory: str | Path, keep: int = 4):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = max(1, int(keep))
        #: Last publish/attach failure, for observability (never raised
        #: into the serving path).
        self.last_error: str | None = None
        self.published = 0

    def path_for(self, version: int) -> Path:
        return self.directory / snapshot_filename(version)

    def versions(self) -> list[int]:
        """Snapshot versions present, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def publish(self, store: Any, version: int) -> Path | None:
        """Freeze ``store`` as ``version``; None when the freeze failed.

        Re-publishing an existing version is a no-op: freezing is
        deterministic, so the file on disk already holds these bytes.
        """
        path = self.path_for(version)
        if path.exists():
            return path
        try:
            freeze(store, path, snapshot_version=version)
        except Exception as exc:  # freeze must never sink the server
            self.last_error = f"publish v{version}: {exc}"
            return None
        self.published += 1
        self._prune()
        return path

    def attach_latest(self) -> CompactSpeechStore | None:
        """Attach the newest intact snapshot; None when none attaches.

        Corrupt or torn files are skipped (newest first) rather than
        trusted — the typed attach errors guarantee a damaged snapshot
        is rejected, never mis-read.
        """
        for version in reversed(self.versions()):
            try:
                return attach(self.path_for(version))
            except SnapshotError as exc:
                self.last_error = f"attach v{version}: {exc}"
        return None

    def _prune(self) -> None:
        versions = self.versions()
        for version in versions[: -self.keep]:
            try:
                self.path_for(version).unlink(missing_ok=True)
            except OSError:
                pass
