"""Speech summarization problem instances (Definition 7).

A problem is a triple ⟨R, F, m⟩: a relation to summarize, a set of
candidate facts, and the maximal number of facts per speech.  The
:class:`SummarizationProblem` also carries the prior and expectation
model so algorithms evaluate utility consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import InvalidProblemError
from repro.core.expectation import ClosestRelevantFactModel, ExpectationModel
from repro.core.model import Fact, SummarizationRelation
from repro.core.priors import GlobalAveragePrior, Prior
from repro.core.utility import UtilityEvaluator


@dataclass
class SummarizationProblem:
    """An instance of the speech summarization problem.

    Attributes
    ----------
    relation:
        The relation (data subset) to summarize.
    candidate_facts:
        The facts F available for speech construction.
    max_facts:
        The maximal speech length m.
    prior:
        Prior expectation model (defaults to the global target average).
    expectation_model:
        User expectation model (defaults to closest relevant value).
    label:
        Optional identifier, used by the problem generator to record
        which query the problem answers.
    """

    relation: SummarizationRelation
    candidate_facts: Sequence[Fact]
    max_facts: int
    prior: Prior = field(default_factory=GlobalAveragePrior)
    expectation_model: ExpectationModel = field(default_factory=ClosestRelevantFactModel)
    label: str = ""

    def __post_init__(self) -> None:
        if self.max_facts < 1:
            raise InvalidProblemError(
                f"max_facts must be at least 1, got {self.max_facts}"
            )
        if not self.candidate_facts:
            raise InvalidProblemError("a problem requires at least one candidate fact")

    def evaluator(self) -> UtilityEvaluator:
        """Build a utility evaluator for this problem instance."""
        return UtilityEvaluator(
            self.relation,
            prior=self.prior,
            expectation_model=self.expectation_model,
        )

    @property
    def num_candidates(self) -> int:
        """Number of candidate facts (k in the complexity analysis)."""
        return len(self.candidate_facts)

    @property
    def num_rows(self) -> int:
        """Number of relation rows (n in the complexity analysis)."""
        return self.relation.num_rows
