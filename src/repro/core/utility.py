"""Deviation and utility computation (Definitions 5 and 6).

The :class:`UtilityEvaluator` is the numerical heart of the
reproduction.  It computes

* ``D(F)`` — accumulated deviation between expectations and the data,
* ``U(F) = D(∅) − D(F)`` — speech utility,
* single-fact utilities and *incremental* utility gains, which is what
  the greedy algorithm (Algorithm 2) needs in every iteration.

Incremental gains are only well-defined under the paper's default
expectation model (closest relevant value), where adding a fact can
only reduce each row's deviation.  The evaluator keeps a per-row
"current best deviation" vector for that purpose, mirroring the
expectation column the paper's SQL implementation stores in the data
relation (Algorithm 2, Line 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.expectation import ClosestRelevantFactModel, ExpectationModel
from repro.core.kernel import FactScopeIndex
from repro.core.model import Fact, Scope, Speech, SummarizationRelation
from repro.core.priors import GlobalAveragePrior, Prior


@dataclass
class ExpectationState:
    """Mutable greedy state: per-row expectation and its deviation.

    ``expected`` holds E(F, r) for the facts applied so far; ``error``
    holds |E(F, r) − v_r| per row.  Both start from the prior.
    """

    expected: np.ndarray
    error: np.ndarray

    def copy(self) -> "ExpectationState":
        """Deep copy (used when exploring alternative expansions)."""
        return ExpectationState(self.expected.copy(), self.error.copy())

    @property
    def total_error(self) -> float:
        """Accumulated deviation D(F) for the facts applied so far."""
        return float(self.error.sum())


class UtilityEvaluator:
    """Evaluates deviation and utility of fact sets over one relation.

    Parameters
    ----------
    relation:
        The relation to summarize.
    prior:
        Prior expectation model; defaults to the global target average,
        matching the paper's experimental setup.
    expectation_model:
        How users combine relevant facts; defaults to the closest
        relevant value model validated in the paper.
    """

    def __init__(
        self,
        relation: SummarizationRelation,
        prior: Prior | None = None,
        expectation_model: ExpectationModel | None = None,
    ):
        self._relation = relation
        self._prior = prior or GlobalAveragePrior()
        self._model = expectation_model or ClosestRelevantFactModel()
        self._prior_values = self._prior.values(relation)
        if self._prior_values.shape != relation.target_values.shape:
            raise ValueError(
                "prior produced a vector of wrong length "
                f"({self._prior_values.shape} vs {relation.target_values.shape})"
            )
        self._prior_error = np.abs(self._prior_values - relation.target_values)
        self._scope_indices_cache: dict[Scope, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def relation(self) -> SummarizationRelation:
        """The relation being summarized."""
        return self._relation

    @property
    def prior(self) -> Prior:
        """The prior expectation model."""
        return self._prior

    @property
    def expectation_model(self) -> ExpectationModel:
        """The user expectation model."""
        return self._model

    @property
    def prior_values(self) -> np.ndarray:
        """Prior expectations per row."""
        return self._prior_values

    def scope_indices(self, scope: Scope) -> np.ndarray:
        """Row indices within ``scope`` (cached)."""
        cached = self._scope_indices_cache.get(scope)
        if cached is None:
            cached = self._relation.scope_row_indices(scope)
            self._scope_indices_cache[scope] = cached
        return cached

    # ------------------------------------------------------------------
    # Deviation and utility (Definitions 5 and 6)
    # ------------------------------------------------------------------
    def prior_deviation(self) -> float:
        """D(∅): accumulated deviation when only the prior is known."""
        return float(self._prior_error.sum())

    def deviation(self, facts: Iterable[Fact] | Speech) -> float:
        """D(F): accumulated deviation after hearing ``facts``."""
        fact_list = list(facts.facts if isinstance(facts, Speech) else facts)
        expected = self._model.expectations(self._relation, fact_list, self._prior_values)
        return float(np.abs(expected - self._relation.target_values).sum())

    def utility(self, facts: Iterable[Fact] | Speech) -> float:
        """U(F) = D(∅) − D(F)."""
        return self.prior_deviation() - self.deviation(facts)

    def scaled_utility(self, facts: Iterable[Fact] | Speech) -> float:
        """Utility scaled to [0, 1] by the prior deviation.

        The paper scales utility to one per summarization problem
        instance when reporting Figure 3; a value of 1 means the speech
        removed all deviation.
        """
        prior = self.prior_deviation()
        if prior == 0.0:
            return 1.0
        return self.utility(facts) / prior

    def expectations(self, facts: Iterable[Fact] | Speech) -> np.ndarray:
        """E(F, r) per row, under the configured expectation model."""
        fact_list = list(facts.facts if isinstance(facts, Speech) else facts)
        return self._model.expectations(self._relation, fact_list, self._prior_values)

    # ------------------------------------------------------------------
    # Single-fact utilities and incremental gains (closest model)
    # ------------------------------------------------------------------
    def single_fact_utility(self, fact: Fact) -> float:
        """Utility of the speech containing only ``fact``.

        Under the closest-relevant-value model this equals the summed
        per-row reduction of deviation on the fact's scope.
        """
        indices = self.scope_indices(fact.scope)
        if indices.size == 0:
            return 0.0
        truth = self._relation.target_values[indices]
        prior_err = self._prior_error[indices]
        fact_err = np.abs(fact.value - truth)
        return float(np.maximum(prior_err - fact_err, 0.0).sum())

    def single_fact_utilities(self, facts: Sequence[Fact]) -> np.ndarray:
        """Single-fact utilities for a list of facts."""
        return np.array([self.single_fact_utility(f) for f in facts], dtype=float)

    def initial_state(self) -> ExpectationState:
        """Greedy state for the empty speech (expectation = prior)."""
        return ExpectationState(
            expected=self._prior_values.copy(),
            error=self._prior_error.copy(),
        )

    def incremental_gain(self, fact: Fact, state: ExpectationState) -> float:
        """Utility gain of adding ``fact`` to the speech captured by ``state``.

        Only meaningful under the closest-relevant-value model, where a
        new fact can only decrease per-row deviation within its scope.
        """
        indices = self.scope_indices(fact.scope)
        if indices.size == 0:
            return 0.0
        truth = self._relation.target_values[indices]
        fact_err = np.abs(fact.value - truth)
        return float(np.maximum(state.error[indices] - fact_err, 0.0).sum())

    # ------------------------------------------------------------------
    # Batch kernels (vectorized over all candidates at once)
    # ------------------------------------------------------------------
    def fact_scope_index(self, facts: Sequence[Fact]) -> FactScopeIndex:
        """Build the CSR scope index for a candidate fact list.

        The index is built once per problem; afterwards
        :meth:`batch_incremental_gains` evaluates every candidate in one
        NumPy pass instead of one :meth:`incremental_gain` call each.
        """
        return FactScopeIndex.build(self._relation, facts)

    def batch_incremental_gains(
        self, index: FactScopeIndex, state: ExpectationState
    ) -> np.ndarray:
        """Gain of every indexed fact against ``state``, in one pass.

        Equivalent to ``[incremental_gain(f, state) for f in facts]``
        under the closest-relevant-value model (the per-fact path is
        kept as a reference implementation for parity testing).
        """
        return index.batch_gains(state.error)

    def batch_single_fact_utilities(self, index: FactScopeIndex) -> np.ndarray:
        """Single-fact utilities of all indexed facts (against the prior)."""
        return index.batch_gains(self._prior_error)

    def apply_fact(self, fact: Fact, state: ExpectationState) -> float:
        """Apply ``fact`` to ``state`` in place; return the realised gain.

        This is Algorithm 2, Line 11: recalculate the user expectation
        column after expanding the current speech.
        """
        indices = self.scope_indices(fact.scope)
        if indices.size == 0:
            return 0.0
        truth = self._relation.target_values[indices]
        fact_err = np.abs(fact.value - truth)
        improves = fact_err < state.error[indices]
        improved_rows = indices[improves]
        gain = float((state.error[improved_rows] - fact_err[improves]).sum())
        state.expected[improved_rows] = fact.value
        state.error[improved_rows] = fact_err[improves]
        return gain

    # ------------------------------------------------------------------
    # Group-level bounds (Section VI-B)
    # ------------------------------------------------------------------
    def group_deviation_bounds(
        self,
        group_columns: Sequence[str],
        state: ExpectationState | None = None,
    ) -> dict[tuple, float]:
        """Per-scope upper bounds on utility gain for a fact group.

        For each value combination of ``group_columns``, the bound is
        the summed current deviation of the rows in that combination:
        adding a fact can at most reduce its scope's deviation to zero
        (paper, Section VI-B).  When ``state`` is None, bounds are
        computed against the prior (empty speech).
        """
        error = state.error if state is not None else self._prior_error
        inverse, keys = self._relation.grouping(list(group_columns))
        sums = np.bincount(inverse, weights=error, minlength=len(keys))
        return {key: float(sums[g]) for g, key in enumerate(keys)}

    def max_group_bound(
        self,
        group_columns: Sequence[str],
        state: ExpectationState | None = None,
    ) -> float:
        """The largest per-scope bound of a fact group (0.0 when empty)."""
        error = state.error if state is not None else self._prior_error
        inverse, keys = self._relation.grouping(list(group_columns))
        if not keys:
            return 0.0
        sums = np.bincount(inverse, weights=error, minlength=len(keys))
        return float(sums.max())
