"""Prior expectation models.

Definition 4 of the paper includes a prior ``P(r)``: the value the user
expects for a row before hearing any facts.  The experiments use the
average value of the target column as a constant prior; the running
example (flight delays) uses a zero prior.  Custom per-row priors are
supported for completeness.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping, Any

import numpy as np

from repro.core.model import SummarizationRelation


class Prior(abc.ABC):
    """Produces the user's prior expectation for every relation row."""

    @abc.abstractmethod
    def values(self, relation: SummarizationRelation) -> np.ndarray:
        """Prior expectations, one per relation row."""

    def describe(self) -> str:
        """Human-readable description used in speech prefixes and logs."""
        return type(self).__name__


class ZeroPrior(Prior):
    """Users expect zero by default (running example: no delays)."""

    def values(self, relation: SummarizationRelation) -> np.ndarray:
        return np.zeros(relation.num_rows, dtype=float)

    def describe(self) -> str:
        return "zero prior"


class ConstantPrior(Prior):
    """Users expect a fixed constant value for every row."""

    def __init__(self, value: float):
        self._value = float(value)

    @property
    def value(self) -> float:
        """The constant prior value."""
        return self._value

    def values(self, relation: SummarizationRelation) -> np.ndarray:
        return np.full(relation.num_rows, self._value, dtype=float)

    def describe(self) -> str:
        return f"constant prior ({self._value:.4g})"


class GlobalAveragePrior(Prior):
    """Users expect the overall average of the target column.

    This is the prior used in the paper's experiments (Section VIII-A).
    """

    def values(self, relation: SummarizationRelation) -> np.ndarray:
        mean = float(relation.target_values.mean())
        return np.full(relation.num_rows, mean, dtype=float)

    def describe(self) -> str:
        return "global average prior"


class PerRowPrior(Prior):
    """A prior computed per row by a user-supplied function.

    The function receives each row as a dict (dimensions + target) and
    returns the prior expectation for that row.
    """

    def __init__(self, fn: Callable[[Mapping[str, Any]], float], description: str = "per-row prior"):
        self._fn = fn
        self._description = description

    def values(self, relation: SummarizationRelation) -> np.ndarray:
        return np.array([float(self._fn(row)) for row in relation.iter_rows()], dtype=float)

    def describe(self) -> str:
        return self._description
