"""Facts, scopes, speeches and the relation view they summarize.

These classes are direct counterparts of Definitions 1-3 of the paper:

* :class:`SummarizationRelation` — a relation with designated dimension
  columns and one numeric target column (Definition 1).
* :class:`Scope` / :class:`Fact` — a fact assigns values to a subset of
  the dimension columns and carries a typical value, the average of the
  target column over all rows within scope (Definition 2).
* :class:`Speech` — a set of facts with bounded cardinality
  (Definition 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.errors import InvalidFactError, InvalidProblemError
from repro.relational.column import ColumnType
from repro.relational.table import Table


class Scope:
    """An assignment of values to a subset of dimension columns.

    Scopes are immutable and hashable so they can key dictionaries and
    be members of sets.  The empty scope covers the whole relation.
    """

    __slots__ = ("_items", "_columns", "_values")

    def __init__(self, assignments: Mapping[str, Any] | None = None):
        items = tuple(sorted((assignments or {}).items()))
        object.__setattr__(self, "_items", items)
        # Precomputed projections: scopes are created once per fact but
        # queried per candidate per greedy iteration.
        object.__setattr__(self, "_columns", tuple(col for col, _ in items))
        object.__setattr__(self, "_values", tuple(val for _, val in items))

    # Mapping-like interface -------------------------------------------------
    @property
    def assignments(self) -> dict[str, Any]:
        """The scope's column -> value assignments as a dict."""
        return dict(self._items)

    @property
    def columns(self) -> tuple[str, ...]:
        """The restricted dimension columns, sorted by name."""
        return self._columns

    @property
    def sorted_values(self) -> tuple[Any, ...]:
        """The assigned values, in sorted-column order (pairs ``columns``)."""
        return self._values

    def value(self, column: str) -> Any:
        """Value assigned to ``column`` (KeyError if unrestricted)."""
        for col, val in self._items:
            if col == column:
                return val
        raise KeyError(column)

    def restricts(self, column: str) -> bool:
        """True when the scope restricts ``column``."""
        return any(col == column for col, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Scope):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "Scope(<all rows>)"
        inner = ", ".join(f"{col}={val!r}" for col, val in self._items)
        return f"Scope({inner})"

    # Set-like relations between scopes --------------------------------------
    def is_subscope_of(self, other: "Scope") -> bool:
        """True when this scope's assignments are a subset of ``other``'s.

        A sub-scope restricts fewer (or equal) dimensions, i.e. covers a
        superset of the data rows.
        """
        mine = dict(self._items)
        theirs = dict(other._items)
        return all(col in theirs and theirs[col] == val for col, val in mine.items())

    def contains_row(self, row: Mapping[str, Any]) -> bool:
        """True when a data row (dict) falls within this scope."""
        return all(row.get(col) == val for col, val in self._items)

    def merged_with(self, other: "Scope") -> "Scope | None":
        """Combine two scopes; None when they conflict on some column."""
        merged = dict(self._items)
        for col, val in other._items:
            if col in merged and merged[col] != val:
                return None
            merged[col] = val
        return Scope(merged)


@dataclass(frozen=True)
class Fact:
    """A fact: a scope plus the typical (average) target value within it.

    ``support`` records how many relation rows fall within the scope;
    facts with zero support are invalid (they describe no data).
    """

    scope: Scope
    value: float
    support: int = 0

    def __post_init__(self) -> None:
        if self.support < 0:
            raise InvalidFactError(f"fact support must be non-negative, got {self.support}")

    @property
    def dimensions(self) -> tuple[str, ...]:
        """The dimension columns this fact restricts."""
        return self.scope.columns

    def covers_row(self, row: Mapping[str, Any]) -> bool:
        """True when the data row is within this fact's scope."""
        return self.scope.contains_row(row)

    def __repr__(self) -> str:
        return f"Fact({self.scope!r}, value={self.value:.4g}, support={self.support})"


class Speech:
    """An unordered set of facts (Definition 3).

    Speeches compare equal regardless of fact order; the *speech
    length* is the number of facts.
    """

    __slots__ = ("_facts",)

    def __init__(self, facts: Iterable[Fact] = ()):
        unique: dict[Fact, None] = {}
        for fact in facts:
            unique.setdefault(fact, None)
        object.__setattr__(self, "_facts", tuple(unique))

    @property
    def facts(self) -> tuple[Fact, ...]:
        """The speech's facts (deduplicated, insertion-ordered)."""
        return self._facts

    @property
    def length(self) -> int:
        """Number of facts in the speech."""
        return len(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Speech):
            return NotImplemented
        return frozenset(self._facts) == frozenset(other._facts)

    def __hash__(self) -> int:
        return hash(frozenset(self._facts))

    def __repr__(self) -> str:
        return f"Speech({list(self._facts)!r})"

    def with_fact(self, fact: Fact) -> "Speech":
        """Return a new speech with ``fact`` added."""
        return Speech(self._facts + (fact,))

    def relevant_facts(self, row: Mapping[str, Any]) -> list[Fact]:
        """Facts whose scope contains ``row``."""
        return [fact for fact in self._facts if fact.covers_row(row)]


class SummarizationRelation:
    """A relation with designated dimensions and a numeric target column.

    This view wraps a :class:`repro.relational.Table` and provides the
    numpy-backed access paths the utility evaluator and the algorithms
    need: the target vector, per-fact row masks, and grouping by
    dimension-value combinations.
    """

    def __init__(self, table: Table, dimensions: Sequence[str], target: str):
        if not dimensions:
            raise InvalidProblemError("at least one dimension column is required")
        if table.num_rows == 0:
            raise InvalidProblemError(f"relation {table.name!r} is empty")
        for dim in dimensions:
            if not table.has_column(dim):
                raise InvalidProblemError(
                    f"dimension column {dim!r} not present in table {table.name!r}"
                )
        if not table.has_column(target):
            raise InvalidProblemError(
                f"target column {target!r} not present in table {table.name!r}"
            )
        if target in dimensions:
            raise InvalidProblemError(
                f"target column {target!r} cannot also be a dimension"
            )
        target_col = table.column(target)
        if target_col.ctype is ColumnType.CATEGORICAL:
            raise InvalidProblemError(f"target column {target!r} must be numeric")

        self._table = table
        self._dimensions = tuple(dimensions)
        self._target = target
        # Rows with NULL target values carry no information for the
        # summarization problem; they are dropped from the view.
        keep = [v is not None for v in target_col]
        self._view = table.mask(keep) if not all(keep) else table
        self._codes_cache: dict[str, tuple[np.ndarray, list[Any], dict[Any, int]]] = {}
        self._grouping_cache: dict[tuple[str, ...], tuple[np.ndarray, list[tuple[Any, ...]]]] = {}
        self._segments_cache: dict[
            tuple[str, ...], tuple[np.ndarray, np.ndarray, dict[tuple[Any, ...], int]]
        ] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        """The underlying (filtered) table."""
        return self._view

    @property
    def name(self) -> str:
        """Name of the underlying table."""
        return self._table.name

    @property
    def dimensions(self) -> tuple[str, ...]:
        """The dimension columns."""
        return self._dimensions

    @property
    def target(self) -> str:
        """The target column name."""
        return self._target

    @property
    def num_rows(self) -> int:
        """Number of rows with a non-NULL target value."""
        return self._view.num_rows

    @cached_property
    def target_values(self) -> np.ndarray:
        """The target column as a float array (one entry per row)."""
        return np.array(
            [float(v) for v in self._view.column(self._target)], dtype=float
        )

    @cached_property
    def _dimension_values(self) -> dict[str, list[Any]]:
        return {dim: self._view.column(dim).values for dim in self._dimensions}

    def dimension_domain(self, dimension: str) -> list[Any]:
        """Distinct non-NULL values of a dimension, in appearance order."""
        if dimension not in self._dimensions:
            raise InvalidProblemError(f"{dimension!r} is not a dimension of this relation")
        return self._view.column(dimension).distinct_values()

    def row(self, index: int) -> dict[str, Any]:
        """Row ``index`` as a dict (dimensions + target)."""
        return self._view.row(index)

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over rows as dicts."""
        return self._view.iter_rows()

    # ------------------------------------------------------------------
    # Scope machinery
    # ------------------------------------------------------------------
    def dimension_codes(self, dimension: str) -> tuple[np.ndarray, list[Any], dict[Any, int]]:
        """Integer codes for one dimension column (cached).

        Returns ``(codes, decode, code_of)``: per-row integer codes in
        first-appearance order, the code -> value table, and the
        value -> code lookup.  NULL is treated as a regular value; the
        callers that must skip NULLs filter on the decoded values.
        """
        cached = self._codes_cache.get(dimension)
        if cached is None:
            if dimension not in self._dimensions:
                raise InvalidProblemError(
                    f"{dimension!r} is not a dimension of relation {self.name!r}"
                )
            values = self._dimension_values[dimension]
            code_of: dict[Any, int] = {}
            decode: list[Any] = []
            codes = np.empty(len(values), dtype=np.int64)
            for i, value in enumerate(values):
                code = code_of.get(value)
                if code is None:
                    code = len(decode)
                    code_of[value] = code
                    decode.append(value)
                codes[i] = code
            cached = (codes, decode, code_of)
            self._codes_cache[dimension] = cached
        return cached

    def grouping(self, columns: Sequence[str]) -> tuple[np.ndarray, list[tuple[Any, ...]]]:
        """Compact group ids per row for a column combination (cached).

        Returns ``(inverse, keys)``: ``inverse[r]`` is the group id of
        row ``r`` and ``keys[g]`` the value tuple of group ``g`` (in
        ``columns`` order).  Group ids follow first appearance in the
        data, matching the historical dict-insertion order of
        :meth:`group_rows_by`.
        """
        key = tuple(columns)
        cached = self._grouping_cache.get(key)
        if cached is not None:
            return cached
        if not key:
            cached = (np.zeros(self.num_rows, dtype=np.int64), [()])
            self._grouping_cache[key] = cached
            return cached

        # Compose one mixed-radix code per row from the per-column codes.
        # When the radix product could overflow int64 (extreme per-column
        # cardinalities), fall back to dict-based grouping: silent
        # wrap-around would merge distinct groups.
        per_column = [self.dimension_codes(c) for c in key]
        radix_product = 1
        for _, decode, _ in per_column:
            radix_product *= max(len(decode), 1)
        if radix_product > 2**62:
            value_lists = [self._dimension_values[c] for c in key]
            group_of: dict[tuple[Any, ...], int] = {}
            keys = []
            inverse = np.empty(self.num_rows, dtype=np.int64)
            for i, row_key in enumerate(zip(*value_lists)):
                group = group_of.get(row_key)
                if group is None:
                    group = len(keys)
                    group_of[row_key] = group
                    keys.append(row_key)
                inverse[i] = group
            cached = (inverse, keys)
            self._grouping_cache[key] = cached
            return cached
        combined = per_column[0][0]
        for codes, decode, _ in per_column[1:]:
            combined = combined * len(decode) + codes
        uniques, first_pos, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        # np.unique sorts by code value; renumber groups by first appearance.
        appearance = np.argsort(first_pos, kind="stable")
        rank = np.empty(uniques.size, dtype=np.int64)
        rank[appearance] = np.arange(uniques.size)
        inverse = rank[inverse]

        keys: list[tuple[Any, ...]] = []
        for code in uniques[appearance]:
            parts: list[Any] = []
            for codes, decode, _ in reversed(per_column[1:]):
                code, part = divmod(int(code), len(decode))
                parts.append(decode[part])
            parts.append(per_column[0][1][int(code)])
            keys.append(tuple(reversed(parts)))
        cached = (inverse, keys)
        self._grouping_cache[key] = cached
        return cached

    def group_segments(
        self, columns: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray, dict[tuple[Any, ...], int]]:
        """Cached grouped row layout for one column combination.

        Returns ``(order, offsets, key_to_group)``: ``order`` holds all
        row indices sorted by group (ascending within each group),
        ``order[offsets[g]:offsets[g + 1]]`` slices group ``g``'s rows,
        and ``key_to_group`` maps value tuples to group ids.  Because
        the relation is immutable this is computed once per combination;
        the batch kernel's index build then resolves each fact's scope
        rows with a dict lookup and a slice instead of a row scan.
        """
        key = tuple(columns)
        cached = self._segments_cache.get(key)
        if cached is None:
            inverse, keys = self.grouping(key)
            order = np.argsort(inverse, kind="stable")
            counts = np.bincount(inverse, minlength=len(keys))
            offsets = np.zeros(len(keys) + 1, dtype=np.intp)
            np.cumsum(counts, out=offsets[1:])
            key_to_group = {group_key: g for g, group_key in enumerate(keys)}
            cached = (order, offsets, key_to_group)
            self._segments_cache[key] = cached
        return cached

    def scope_row_indices(self, scope: Scope) -> np.ndarray:
        """Indices of rows within ``scope`` (ascending)."""
        mask = self.scope_mask(scope)
        return np.nonzero(mask)[0]

    def scope_mask(self, scope: Scope) -> np.ndarray:
        """Boolean mask of rows within ``scope``."""
        mask = np.ones(self.num_rows, dtype=bool)
        for column, value in scope:
            if column not in self._dimensions:
                raise InvalidFactError(
                    f"scope restricts {column!r}, which is not a dimension of "
                    f"relation {self.name!r}"
                )
            codes, _, code_of = self.dimension_codes(column)
            # A value absent from the column matches no row (-1 is never a code).
            mask &= codes == code_of.get(value, -1)
        return mask

    def average_target(self, scope: Scope) -> tuple[float | None, int]:
        """Average target value and support within ``scope``.

        Returns ``(None, 0)`` when no rows fall within the scope.
        """
        indices = self.scope_row_indices(scope)
        if indices.size == 0:
            return None, 0
        return float(self.target_values[indices].mean()), int(indices.size)

    def make_fact(self, assignments: Mapping[str, Any]) -> Fact:
        """Build the fact for a scope given by ``assignments``.

        Raises :class:`InvalidFactError` when the scope selects no rows.
        """
        scope = Scope(assignments)
        value, support = self.average_target(scope)
        if value is None:
            raise InvalidFactError(f"scope {scope!r} matches no rows")
        return Fact(scope=scope, value=value, support=support)

    def group_rows_by(self, columns: Sequence[str]) -> dict[tuple[Any, ...], np.ndarray]:
        """Group row indices by value combinations of ``columns``.

        Returns a mapping from value tuples (in ``columns`` order) to
        arrays of row indices.  The empty column list produces a single
        group covering all rows, keyed by the empty tuple.
        """
        if not columns:
            return {(): np.arange(self.num_rows)}
        order, offsets, key_to_group = self.group_segments(columns)
        return {
            key: order[offsets[g] : offsets[g + 1]]
            for key, g in key_to_group.items()
        }
