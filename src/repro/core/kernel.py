"""Vectorized optimizer kernel: batch gain evaluation over fact scopes.

The greedy family of algorithms (Algorithm 2 and its pruned variants)
spends almost all of its time answering one question per iteration:
*what is the utility gain of every candidate fact against the current
expectation state?*  The per-fact path answers it with one NumPy
fancy-indexing round-trip per fact — O(|candidates|) interpreter
crossings per iteration.

:class:`FactScopeIndex` removes that overhead.  It stores every
candidate fact's scope rows in CSR form, built once per problem:

* ``row_indices`` — the concatenation of each fact's scope row indices,
* ``offsets`` — ``offsets[i]:offsets[i+1]`` slices fact ``i``'s rows,
* ``fact_ids`` — the owning fact id per flat entry (for ``bincount``),
* ``fact_errors`` — ``|fact.value − v_r|`` per flat entry, precomputed
  because neither fact values nor data values change during a solve.

With that layout, the gain of *all* facts under the closest-relevant-
value model is a single clipped subtraction over the flat arrays
followed by one ``np.bincount`` — no per-fact Python.  Subset and
sampled variants reuse the same flat pass for the pruned-greedy and
sampling-baseline algorithms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.model import Fact, SummarizationRelation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.utility import ExpectationState

_EMPTY_INDICES = np.empty(0, dtype=np.intp)


class FactScopeIndex:
    """CSR index of candidate-fact scopes over one relation.

    Built once per summarization problem; all batch kernels are then
    pure NumPy passes over the flat arrays.  Under the closest-relevant-
    value expectation model the per-row gain of a fact is
    ``max(error[r] − |fact.value − v_r|, 0)``, so precomputing the fact
    errors makes every gain query a gather + clip + segmented sum.
    """

    __slots__ = (
        "facts",
        "row_indices",
        "offsets",
        "fact_ids",
        "fact_errors",
        "values",
        "supports",
    )

    def __init__(
        self,
        facts: Sequence[Fact],
        row_indices: np.ndarray,
        offsets: np.ndarray,
        fact_ids: np.ndarray,
        fact_errors: np.ndarray,
        values: np.ndarray,
    ):
        self.facts = list(facts)
        self.row_indices = row_indices
        self.offsets = offsets
        self.fact_ids = fact_ids
        self.fact_errors = fact_errors
        self.values = values
        self.supports = np.diff(offsets)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, relation: SummarizationRelation, facts: Sequence[Fact]) -> "FactScopeIndex":
        """Resolve every fact's scope rows and lay them out in CSR form.

        Facts are grouped by the dimension columns their scope restricts
        so each column combination is resolved with one grouping pass
        over the relation instead of one mask evaluation per fact.
        """
        facts = list(facts)
        segments: list[np.ndarray] = [_EMPTY_INDICES] * len(facts)
        by_columns: dict[tuple[str, ...], list[int]] = {}
        for i, fact in enumerate(facts):
            by_columns.setdefault(fact.scope.columns, []).append(i)
        for columns, members in by_columns.items():
            order, offsets, key_to_group = relation.group_segments(columns)
            for i in members:
                # Scope columns are sorted, so the sorted value tuple is
                # the grouping key directly.
                group = key_to_group.get(facts[i].scope.sorted_values)
                if group is not None:
                    segments[i] = order[offsets[group] : offsets[group + 1]]

        offsets = np.zeros(len(facts) + 1, dtype=np.intp)
        np.cumsum([s.size for s in segments], out=offsets[1:])
        row_indices = (
            np.concatenate(segments) if segments else _EMPTY_INDICES
        ).astype(np.intp, copy=False)
        sizes = np.diff(offsets)
        fact_ids = np.repeat(np.arange(len(facts), dtype=np.intp), sizes)
        values = np.array([f.value for f in facts], dtype=float)
        truth = relation.target_values
        fact_errors = np.abs(values[fact_ids] - truth[row_indices])
        return cls(facts, row_indices, offsets, fact_ids, fact_errors, values)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_facts(self) -> int:
        """Number of indexed facts."""
        return len(self.facts)

    @property
    def total_scope_rows(self) -> int:
        """Total flat entries (sum of per-fact scope sizes)."""
        return int(self.row_indices.size)

    def rows_of(self, fact_id: int) -> np.ndarray:
        """Scope row indices of fact ``fact_id`` (ascending)."""
        return self.row_indices[self.offsets[fact_id] : self.offsets[fact_id + 1]]

    def errors_of(self, fact_id: int) -> np.ndarray:
        """Per-row fact errors of fact ``fact_id``."""
        return self.fact_errors[self.offsets[fact_id] : self.offsets[fact_id + 1]]

    # ------------------------------------------------------------------
    # Batch gain kernels (closest-relevant-value model)
    # ------------------------------------------------------------------
    def batch_gains(self, error: np.ndarray) -> np.ndarray:
        """Utility gain of every fact against the per-row ``error`` vector.

        One flat pass: gather current errors, subtract the precomputed
        fact errors, clip at zero, and sum per fact via ``bincount``.
        """
        deltas = error[self.row_indices] - self.fact_errors
        np.maximum(deltas, 0.0, out=deltas)
        return np.bincount(self.fact_ids, weights=deltas, minlength=self.num_facts)

    def subset_gains(self, fact_mask: np.ndarray, error: np.ndarray) -> np.ndarray:
        """Gains of the facts selected by ``fact_mask`` (others stay 0).

        Used by the pruned-greedy variants, which evaluate pruning
        sources first and surviving groups afterwards.
        """
        selected = fact_mask[self.fact_ids]
        ids = self.fact_ids[selected]
        deltas = error[self.row_indices[selected]] - self.fact_errors[selected]
        np.maximum(deltas, 0.0, out=deltas)
        return np.bincount(ids, weights=deltas, minlength=self.num_facts)

    def sampled_gains(
        self, error: np.ndarray, row_mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gains restricted to sampled rows, plus per-fact in-sample counts.

        ``row_mask`` marks the sampled rows; the sampling baseline scales
        the returned gains by ``support / in_sample_count`` itself.
        """
        selected = row_mask[self.row_indices]
        ids = self.fact_ids[selected]
        deltas = error[self.row_indices[selected]] - self.fact_errors[selected]
        np.maximum(deltas, 0.0, out=deltas)
        gains = np.bincount(ids, weights=deltas, minlength=self.num_facts)
        counts = np.bincount(ids, minlength=self.num_facts)
        return gains, counts

    def gain_of(self, fact_id: int, error: np.ndarray) -> float:
        """Gain of one fact (used by the lazy-greedy re-evaluation).

        Summed through a single-bin ``bincount`` so the accumulation
        order matches :meth:`batch_gains` exactly — lazy greedy's
        stale-bound argument needs re-evaluated gains to be bitwise
        replays of what the batch pass would produce, and pairwise
        ``sum()`` can differ from ``bincount`` in the last ulp.
        """
        lo = self.offsets[fact_id]
        hi = self.offsets[fact_id + 1]
        if lo == hi:
            return 0.0
        deltas = error[self.row_indices[lo:hi]] - self.fact_errors[lo:hi]
        np.maximum(deltas, 0.0, out=deltas)
        return float(
            np.bincount(np.zeros(deltas.size, dtype=np.intp), weights=deltas, minlength=1)[0]
        )

    def apply_fact(self, fact_id: int, state: "ExpectationState") -> float:
        """Apply fact ``fact_id`` to ``state`` in place; return the gain.

        Mirrors :meth:`UtilityEvaluator.apply_fact` but reuses the
        precomputed scope rows and fact errors.
        """
        lo = self.offsets[fact_id]
        hi = self.offsets[fact_id + 1]
        if lo == hi:
            return 0.0
        rows = self.row_indices[lo:hi]
        fact_err = self.fact_errors[lo:hi]
        improves = fact_err < state.error[rows]
        improved_rows = rows[improves]
        gain = float((state.error[improved_rows] - fact_err[improves]).sum())
        state.expected[improved_rows] = self.values[fact_id]
        state.error[improved_rows] = fact_err[improves]
        return gain
