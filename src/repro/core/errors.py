"""Exceptions raised by the core problem model."""


class CoreError(Exception):
    """Base class for errors in the core problem model."""


class InvalidFactError(CoreError):
    """Raised when a fact references unknown dimensions or has no scope rows."""


class InvalidProblemError(CoreError):
    """Raised when a summarization problem instance is ill-formed
    (e.g. no target column, non-positive speech length, empty relation)."""
