"""Core problem model of the paper: facts, speeches, user expectations, utility.

The problem model (Section II) is defined over a relation with
dimension columns and one numeric target column.  A *fact* pairs a
scope (equality constraints on a subset of dimensions) with a typical
value (the average target value within scope).  A *speech* is a small
set of facts.  Utility measures how much a speech reduces the deviation
between the listener's expectations and the actual data, relative to a
prior.
"""

from repro.core.errors import CoreError, InvalidFactError, InvalidProblemError
from repro.core.model import Fact, Scope, Speech, SummarizationRelation
from repro.core.priors import (
    ConstantPrior,
    GlobalAveragePrior,
    PerRowPrior,
    Prior,
    ZeroPrior,
)
from repro.core.expectation import (
    AverageOfAllFactsModel,
    AverageOfScopeFactsModel,
    ClosestRelevantFactModel,
    ExpectationModel,
    FarthestRelevantFactModel,
)
from repro.core.kernel import FactScopeIndex
from repro.core.utility import UtilityEvaluator
from repro.core.problem import SummarizationProblem

__all__ = [
    "CoreError",
    "InvalidFactError",
    "InvalidProblemError",
    "Scope",
    "Fact",
    "Speech",
    "SummarizationRelation",
    "Prior",
    "ZeroPrior",
    "ConstantPrior",
    "GlobalAveragePrior",
    "PerRowPrior",
    "ExpectationModel",
    "ClosestRelevantFactModel",
    "FarthestRelevantFactModel",
    "AverageOfScopeFactsModel",
    "AverageOfAllFactsModel",
    "FactScopeIndex",
    "UtilityEvaluator",
    "SummarizationProblem",
]
