"""User expectation models.

Definition 4 of the paper models how a listener combines the facts that
are relevant to a row (i.e. whose scope contains the row) with their
prior.  The paper's default — validated against crowd workers in
Figure 7 — assumes users pick, among the typical values proposed by
relevant facts plus the prior, the value *closest* to the truth
("users often have prior knowledge allowing them to determine the most
relevant fact among alternatives").  Figure 7 compares that model
against three alternatives, all implemented here:

* closest relevant value (paper default),
* farthest relevant value (pessimistic),
* average over relevant facts' values,
* average over *all* facts' values (ignoring relevance).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.model import Fact, SummarizationRelation


class ExpectationModel(abc.ABC):
    """Computes E(F, r): per-row expected values after hearing facts F."""

    name: str = "abstract"

    @abc.abstractmethod
    def expectations(
        self,
        relation: SummarizationRelation,
        facts: Sequence[Fact],
        prior_values: np.ndarray,
    ) -> np.ndarray:
        """Expected target values, one per relation row.

        ``prior_values`` provides the user's expectation in the absence
        of relevant facts; it always participates in the candidate value
        set (Definition 4: "The prior value is included in the set V_r
        for any row").
        """

    # Helper shared by the concrete models -----------------------------------
    @staticmethod
    def _candidate_matrix(
        relation: SummarizationRelation,
        facts: Sequence[Fact],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (values, relevance) for facts over rows.

        ``values`` has shape (len(facts),): each fact's typical value.
        ``relevance`` has shape (len(facts), num_rows): True where the
        row is within the fact's scope.
        """
        n = relation.num_rows
        if not facts:
            return np.zeros((0,), dtype=float), np.zeros((0, n), dtype=bool)
        values = np.array([fact.value for fact in facts], dtype=float)
        relevance = np.zeros((len(facts), n), dtype=bool)
        for k, fact in enumerate(facts):
            relevance[k] = relation.scope_mask(fact.scope)
        return values, relevance


class ClosestRelevantFactModel(ExpectationModel):
    """Users adopt the relevant value closest to the true value (paper default)."""

    name = "closest"

    def expectations(
        self,
        relation: SummarizationRelation,
        facts: Sequence[Fact],
        prior_values: np.ndarray,
    ) -> np.ndarray:
        truth = relation.target_values
        best = np.abs(prior_values - truth)
        expected = prior_values.astype(float).copy()
        values, relevance = self._candidate_matrix(relation, facts)
        for k in range(len(values)):
            deviation = np.abs(values[k] - truth)
            improves = relevance[k] & (deviation < best)
            expected[improves] = values[k]
            best = np.minimum(best, np.where(relevance[k], deviation, np.inf))
        return expected


class FarthestRelevantFactModel(ExpectationModel):
    """Users adopt the relevant value farthest from the true value (pessimistic)."""

    name = "farthest"

    def expectations(
        self,
        relation: SummarizationRelation,
        facts: Sequence[Fact],
        prior_values: np.ndarray,
    ) -> np.ndarray:
        truth = relation.target_values
        worst = np.abs(prior_values - truth)
        expected = prior_values.astype(float).copy()
        values, relevance = self._candidate_matrix(relation, facts)
        for k in range(len(values)):
            deviation = np.abs(values[k] - truth)
            worsens = relevance[k] & (deviation > worst)
            expected[worsens] = values[k]
            worst = np.maximum(worst, np.where(relevance[k], deviation, -np.inf))
        return expected


class AverageOfScopeFactsModel(ExpectationModel):
    """Users average the values of all facts relevant to the row."""

    name = "avg_scope"

    def expectations(
        self,
        relation: SummarizationRelation,
        facts: Sequence[Fact],
        prior_values: np.ndarray,
    ) -> np.ndarray:
        values, relevance = self._candidate_matrix(relation, facts)
        expected = prior_values.astype(float).copy()
        if len(values) == 0:
            return expected
        counts = relevance.sum(axis=0)
        sums = (relevance * values[:, None]).sum(axis=0)
        has_relevant = counts > 0
        expected[has_relevant] = sums[has_relevant] / counts[has_relevant]
        return expected


class AverageOfAllFactsModel(ExpectationModel):
    """Users average the values of *all* facts heard, relevant or not."""

    name = "avg_all"

    def expectations(
        self,
        relation: SummarizationRelation,
        facts: Sequence[Fact],
        prior_values: np.ndarray,
    ) -> np.ndarray:
        expected = prior_values.astype(float).copy()
        if not facts:
            return expected
        mean_value = float(np.mean([fact.value for fact in facts]))
        return np.full(relation.num_rows, mean_value, dtype=float)


def available_models() -> dict[str, ExpectationModel]:
    """All expectation models compared in Figure 7, keyed by name."""
    models = [
        ClosestRelevantFactModel(),
        FarthestRelevantFactModel(),
        AverageOfScopeFactsModel(),
        AverageOfAllFactsModel(),
    ]
    return {model.name: model for model in models}
