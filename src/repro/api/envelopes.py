"""Typed request/response envelopes: the versioned wire contract.

Every request enters the system as a :class:`VoiceRequest` and every
answer leaves it as a :class:`repro.system.engine.VoiceResponse`
encoded by :func:`response_to_dict`.  Both sides of the wire carry
``schema_version`` so transports and stored payloads can detect a
contract they do not understand instead of mis-parsing it.

The encoding is **lossless**: decoding an encoded response yields an
equal :class:`VoiceResponse`, including

* the :class:`ResponseKind` / :class:`RequestType` enums (encoded by
  value, decoded back to the enum members);
* the optional :class:`repro.system.queries.DataQuery` with its
  predicate values' exact runtime types (``bool`` vs ``int`` vs
  ``float`` vs ``str`` survive JSON natively; predicate tuples are
  rebuilt from the JSON lists);
* floats bit-for-bit — JSON's ``repr``-based float text round-trips
  every finite double, signed zero included.

Non-finite floats (NaN, +/-inf) are *rejected* at encode time with
:class:`EnvelopeError`: Python's ``json`` would emit them as the
non-standard tokens ``NaN``/``Infinity`` that other parsers refuse, so
the guarantee "every encoded envelope is valid JSON" requires keeping
them out.  No code path produces them today; the check keeps that true.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.system.classification import RequestType
from repro.system.engine import ResponseKind, VoiceResponse
from repro.system.queries import DataQuery

#: Version tag carried by every envelope.  Bump when the wire shape
#: changes incompatibly; decoders reject versions they do not know.
SCHEMA_VERSION = 1


class EnvelopeError(ValueError):
    """A payload violates the envelope contract (shape, types, version)."""


def _check_version(payload: Mapping[str, Any], what: str) -> None:
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise EnvelopeError(
            f"{what}: unsupported schema_version {version!r} "
            f"(this build speaks {SCHEMA_VERSION})"
        )


def _check_json_scalar(value: Any, where: str) -> Any:
    """Validate one scalar leaving the system is losslessly JSON-able."""
    if isinstance(value, float) and not math.isfinite(value):
        raise EnvelopeError(f"{where}: non-finite float {value!r} is not valid JSON")
    if value is not None and not isinstance(value, (str, int, float, bool)):
        raise EnvelopeError(f"{where}: {type(value).__name__} is not a JSON scalar")
    return value


@dataclass(frozen=True)
class VoiceRequest:
    """One voice request as it crosses the public API.

    Attributes
    ----------
    text:
        The transcript to answer.
    session_id:
        Optional conversation id.  Requests sharing a ``session_id``
        share repeat-state and a session log (see
        :class:`repro.api.sessions.SessionStore`); requests without one
        are answered statelessly.
    request_id:
        Optional caller-chosen id echoed back in the HTTP response,
        letting a client correlate answers on a multiplexed transport.
    deadline_ms:
        Optional per-request latency budget in milliseconds, measured
        from submission.  A request that cannot be answered within it
        gets a ``timeout``-kind response instead of queueing
        indefinitely (see the service's graceful-degradation contract).
        ``None`` defers to the deployment's default deadline, if any.
        Optional fields decode as absent on old payloads, so the schema
        version is unchanged.
    """

    text: str
    session_id: str | None = None
    request_id: str | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.text, str):
            raise EnvelopeError(f"request text must be a string, got {type(self.text).__name__}")
        for name in ("session_id", "request_id"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise EnvelopeError(f"request {name} must be a string or null")
        if self.deadline_ms is not None:
            if (
                isinstance(self.deadline_ms, bool)
                or not isinstance(self.deadline_ms, (int, float))
                or not math.isfinite(self.deadline_ms)
                or self.deadline_ms <= 0
            ):
                raise EnvelopeError(
                    "request deadline_ms must be a positive finite number or null"
                )

    def to_dict(self) -> dict[str, Any]:
        """The request as a JSON-ready dict (schema-versioned)."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "text": self.text,
            "session_id": self.session_id,
            "request_id": self.request_id,
        }
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "VoiceRequest":
        """Decode a request envelope, validating shape and version."""
        if not isinstance(payload, Mapping):
            raise EnvelopeError(f"request envelope must be an object, got {type(payload).__name__}")
        _check_version(payload, "request")
        if "text" not in payload:
            raise EnvelopeError("request envelope is missing 'text'")
        return VoiceRequest(
            text=payload["text"],
            session_id=payload.get("session_id"),
            request_id=payload.get("request_id"),
            deadline_ms=payload.get("deadline_ms"),
        )


def query_to_dict(query: DataQuery) -> dict[str, Any]:
    """Encode a data query (target + equality predicates)."""
    return {
        "target": query.target,
        "predicates": [
            [column, _check_json_scalar(value, f"query predicate {column!r}")]
            for column, value in query.predicates
        ],
    }


def query_from_dict(payload: Mapping[str, Any]) -> DataQuery:
    """Decode a data query; predicate value types survive as-is."""
    try:
        predicates = tuple(
            (column, value) for column, value in payload["predicates"]
        )
        return DataQuery(target=payload["target"], predicates=predicates)
    except (KeyError, TypeError, ValueError) as exc:
        raise EnvelopeError(f"malformed query payload: {exc!r}") from exc


def response_to_dict(
    response: VoiceResponse, request_id: str | None = None
) -> dict[str, Any]:
    """Encode one engine response as a JSON-ready envelope.

    ``request_id`` (when the caller supplied one) is echoed so clients
    can correlate responses.  Raises :class:`EnvelopeError` for values
    that would not survive JSON (non-finite floats).
    """
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": response.kind.value,
        "text": response.text,
        "request_type": response.request_type.value,
        "query": query_to_dict(response.query) if response.query is not None else None,
        "exact_match": bool(response.exact_match),
        "latency_seconds": _check_json_scalar(
            float(response.latency_seconds), "latency_seconds"
        ),
    }
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


def response_from_dict(payload: Mapping[str, Any]) -> VoiceResponse:
    """Decode a response envelope back into an equal :class:`VoiceResponse`."""
    if not isinstance(payload, Mapping):
        raise EnvelopeError(
            f"response envelope must be an object, got {type(payload).__name__}"
        )
    _check_version(payload, "response")
    try:
        kind = ResponseKind(payload["kind"])
        request_type = RequestType(payload["request_type"])
        query_payload = payload.get("query")
        return VoiceResponse(
            kind=kind,
            text=payload["text"],
            request_type=request_type,
            query=query_from_dict(query_payload) if query_payload is not None else None,
            exact_match=bool(payload.get("exact_match", False)),
            latency_seconds=float(payload.get("latency_seconds", 0.0)),
        )
    except EnvelopeError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise EnvelopeError(f"malformed response envelope: {exc!r}") from exc
