"""`ServingConfig`: every serving knob in one validated dataclass.

Before this existed, the serving parameters were scattered kwargs on
:class:`repro.serving.service.VoiceService`, duplicated as CLI flags
and re-declared as constants in the serving benchmark.  ``ServingConfig``
is now the single source: the service consumes it directly, the CLI
``serve`` command builds one from its flags, and
``benchmarks/bench_serving_service.py`` constructs its workloads from
one.

Fields
------
concurrency:
    Service worker tasks = maximum in-flight requests (>= 1).
shards:
    Worker processes in a sharded deployment (>= 1; the default 1
    serves from a single process).  Values above 1 are consumed by
    :class:`repro.serving.sharding.ShardManager`, which spawns one
    full engine per shard behind a consistent-hash router; each shard
    then serves with a copy of this config (``shards`` reset to 1).
max_queue_depth:
    Requests allowed to wait for a worker before ``submit`` rejects
    with ``ServiceOverloadedError`` (>= 0; 0 = no waiting room).
executor_workers:
    Threads in the bounded offload executor for realization misses and
    advanced answers; ``None`` picks ``max(2, concurrency // 2)``.
maintenance_workers:
    Per-job worker count for background maintenance when no shared
    :class:`repro.system.worker_pool.WorkerPool` is given (0 = serial).
latency_window:
    Latency samples kept for the service's percentile metrics.
session_capacity:
    Bound on live sessions in the service's
    :class:`repro.api.sessions.SessionStore` (LRU-evicted beyond it).
http_host / http_port:
    Bind address for the optional :class:`repro.api.http_server.VoiceHttpServer`
    front-end.  Port 0 binds an ephemeral port (the server reports the
    real one once started).
default_deadline_ms:
    Latency budget applied to requests that carry no ``deadline_ms`` of
    their own; expired requests get a ``timeout``-kind response.
    ``None`` (default) means no deadline.
maintenance_retry_limit / maintenance_backoff_base / maintenance_backoff_cap:
    Retry policy for failed maintenance jobs (see
    :class:`repro.serving.scheduler.MaintenanceScheduler`): retries per
    payload and the capped exponential backoff between them.
breaker_threshold / breaker_cooldown_seconds:
    Maintenance circuit breaker: consecutive failures before appends
    are rejected, and how long the breaker stays open before a
    half-open probe.
failpoints / failpoint_seed:
    Deterministic fault-injection specs (see
    :mod:`repro.reliability.faults`) installed when the service starts.
    Empty (default) injects nothing and the sites cost a dict probe.
data_dir:
    Directory for durable serving state (write-ahead journal +
    checkpoints, see :mod:`repro.storage`).  ``None`` (default) serves
    purely in memory; set, the service recovers from the directory at
    construction and journals every accepted append before acking.
journal_fsync:
    fsync each journal record (machine-crash durable) instead of only
    flushing it (process-crash durable).  Costs per-append latency.
checkpoint_every_swaps / checkpoint_every_bytes:
    Checkpoint policy: persist a checkpoint after this many snapshot
    swaps, or once this many journal bytes accumulated since the last
    checkpoint — whichever comes first.
checkpoint_keep:
    Checkpoints retained on disk (older ones are pruned).
checkpoint_compact:
    Persist the speech store inside checkpoints in the compact snapshot
    format (``store.snap``, see :mod:`repro.store`) instead of canonical
    JSON — smaller on disk and loadable via the checksummed attach path.
snapshot_dir:
    Directory for frozen compact-store snapshots (see
    :mod:`repro.store.publish`).  ``None`` (default) publishes nothing.
    Set, the serving side freezes ``store-v{version}.snap`` there — the
    base store at startup and every maintenance swap after — and a
    sharded deployment switches to **mmap-attach spawning**: shards map
    the current snapshot read-only instead of unpickling a private
    store copy, so N shards share one page-cache copy of the store.
attach_snapshots:
    Attach the newest frozen snapshot from ``snapshot_dir`` at service
    construction instead of using the engine's own store (requires
    ``snapshot_dir``).  Set by the shard manager on the config it hands
    spawned shards; a respawned shard thereby starts from the newest
    frozen version and only replays the append-log suffix past it.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

#: Default latency samples kept for percentile estimation (mirrored by
#: the service; older samples roll off so a long-lived deployment
#: reports recent tail behavior).
DEFAULT_LATENCY_WINDOW = 100_000

#: Default bound on live sessions (see ``session_capacity``).
DEFAULT_SESSION_CAPACITY = 1024


@dataclass(frozen=True)
class ServingConfig:
    """Validated configuration for one serving deployment."""

    concurrency: int = 8
    max_queue_depth: int = 64
    shards: int = 1
    executor_workers: int | None = None
    maintenance_workers: int = 0
    latency_window: int = DEFAULT_LATENCY_WINDOW
    session_capacity: int = DEFAULT_SESSION_CAPACITY
    http_host: str = "127.0.0.1"
    http_port: int = 0
    default_deadline_ms: float | None = None
    maintenance_retry_limit: int = 3
    maintenance_backoff_base: float = 0.05
    maintenance_backoff_cap: float = 2.0
    breaker_threshold: int = 5
    breaker_cooldown_seconds: float = 1.0
    failpoints: tuple = ()
    failpoint_seed: int = 0
    data_dir: str | None = None
    journal_fsync: bool = False
    checkpoint_every_swaps: int = 4
    checkpoint_every_bytes: int = 4 * 1024 * 1024
    checkpoint_keep: int = 3
    checkpoint_compact: bool = False
    snapshot_dir: str | None = None
    attach_snapshots: bool = False

    def __post_init__(self) -> None:
        # Accept any iterable of specs (the CLI hands over a list).
        object.__setattr__(self, "failpoints", tuple(self.failpoints))
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {self.max_queue_depth}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.executor_workers is not None and self.executor_workers < 1:
            raise ValueError(
                f"executor_workers must be >= 1 or None, got {self.executor_workers}"
            )
        if self.maintenance_workers < 0:
            raise ValueError(
                f"maintenance_workers must be >= 0, got {self.maintenance_workers}"
            )
        if self.latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {self.latency_window}")
        if self.session_capacity < 1:
            raise ValueError(f"session_capacity must be >= 1, got {self.session_capacity}")
        if not (0 <= self.http_port <= 65535):
            raise ValueError(f"http_port must be in [0, 65535], got {self.http_port}")
        if self.default_deadline_ms is not None and (
            not math.isfinite(self.default_deadline_ms) or self.default_deadline_ms <= 0
        ):
            raise ValueError(
                "default_deadline_ms must be a positive finite number or None, "
                f"got {self.default_deadline_ms}"
            )
        if self.maintenance_retry_limit < 0:
            raise ValueError(
                f"maintenance_retry_limit must be >= 0, got {self.maintenance_retry_limit}"
            )
        if self.maintenance_backoff_base < 0 or self.maintenance_backoff_cap < 0:
            raise ValueError("maintenance backoff base/cap must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_seconds < 0:
            raise ValueError(
                f"breaker_cooldown_seconds must be >= 0, got {self.breaker_cooldown_seconds}"
            )
        if not all(isinstance(spec, str) and spec.strip() for spec in self.failpoints):
            raise ValueError("failpoints must be non-empty spec strings")
        if self.data_dir is not None and not str(self.data_dir).strip():
            raise ValueError("data_dir must be a non-empty path or None")
        if self.checkpoint_every_swaps < 1:
            raise ValueError(
                f"checkpoint_every_swaps must be >= 1, got {self.checkpoint_every_swaps}"
            )
        if self.checkpoint_every_bytes < 1:
            raise ValueError(
                f"checkpoint_every_bytes must be >= 1, got {self.checkpoint_every_bytes}"
            )
        if self.checkpoint_keep < 1:
            raise ValueError(
                f"checkpoint_keep must be >= 1, got {self.checkpoint_keep}"
            )
        if self.snapshot_dir is not None and not str(self.snapshot_dir).strip():
            raise ValueError("snapshot_dir must be a non-empty path or None")
        if self.attach_snapshots and self.snapshot_dir is None:
            raise ValueError("attach_snapshots requires snapshot_dir")

    @property
    def resolved_executor_workers(self) -> int:
        """The offload-executor size after applying the default rule."""
        if self.executor_workers is not None:
            return self.executor_workers
        return max(2, self.concurrency // 2)

    def replace(self, **overrides: Any) -> "ServingConfig":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """The configuration as a JSON-ready dict (for reports/metrics)."""
        return dataclasses.asdict(self)
