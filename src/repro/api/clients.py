"""Transport-agnostic voice clients: one protocol, two transports.

:class:`VoiceClient` is the contract application code programs against:
``ask`` a :class:`repro.api.envelopes.VoiceRequest` (or a plain
transcript string), read ``metrics``/``health``, inspect a ``session``.
Two implementations ship:

* :class:`InProcessClient` — wraps a running
  :class:`repro.serving.service.VoiceService` in the same event loop;
  zero serialization, the fastest possible transport.
* :class:`HttpClient` — speaks HTTP/1.1 to a
  :class:`repro.api.http_server.VoiceHttpServer` over a bounded pool of
  keep-alive connections, using only the standard library's asyncio
  streams.

Both raise the same exceptions
(:class:`repro.api.errors.ServiceOverloadedError` for admission-control
rejects, :class:`repro.api.errors.VoiceApiError` for everything else),
so swapping transports never changes caller error handling — the
property the serving benchmark leans on when it drives the identical
workload through both.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Protocol, runtime_checkable
from urllib.parse import quote

from repro.api.envelopes import (
    EnvelopeError,
    VoiceRequest,
    response_from_dict,
)
from repro.api.errors import (
    MaintenanceUnavailableError,
    ServiceOverloadedError,
    VoiceApiError,
)
from repro.system.engine import VoiceResponse

#: Bytes allowed in one HTTP response body before the client gives up.
MAX_RESPONSE_BYTES = 4 * 1024 * 1024

#: Ceiling on a server-sent ``Retry-After`` hint (seconds) — a confused
#: or hostile intermediary must not park the client for minutes.
MAX_RETRY_AFTER_SECONDS = 5.0


def _as_request(request: VoiceRequest | str) -> VoiceRequest:
    return VoiceRequest(text=request) if isinstance(request, str) else request


@runtime_checkable
class VoiceClient(Protocol):
    """What every transport must offer (see module docstring)."""

    async def ask(self, request: VoiceRequest | str) -> VoiceResponse:
        """Answer one voice request."""
        ...

    async def append(self, rows: list) -> dict[str, Any]:
        """Queue appended rows for background maintenance.

        ``rows`` are JSON-friendly (objects keyed by column name, or
        arrays in schema order).  Returns the acceptance receipt
        ``{"accepted_rows": n, "journal_seq": seq}`` — with durability
        configured server-side, a returned receipt means the batch
        survives crashes.
        """
        ...

    async def metrics(self) -> dict[str, Any]:
        """The service's aggregate metrics summary."""
        ...

    async def health(self) -> dict[str, Any]:
        """Liveness information."""
        ...

    async def session(self, session_id: str) -> dict[str, Any] | None:
        """A session summary, or None when the session is unknown."""
        ...

    async def store_digest(self) -> dict[str, Any]:
        """The current snapshot's store digest (byte-parity probe)."""
        ...

    async def aclose(self) -> None:
        """Release transport resources."""
        ...


class InProcessClient:
    """A :class:`VoiceClient` over a service in the same event loop."""

    def __init__(self, service):
        self._service = service

    async def __aenter__(self) -> "InProcessClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def ask(self, request: VoiceRequest | str) -> VoiceResponse:
        return await self._service.submit(_as_request(request))

    async def append(self, rows: list) -> dict[str, Any]:
        table = self._service.build_append_table(rows)
        seq = self._service.request_append(table)
        return {"accepted_rows": table.num_rows, "journal_seq": seq}

    async def metrics(self) -> dict[str, Any]:
        return self._service.metrics_summary()

    async def health(self) -> dict[str, Any]:
        health = self._service.health()
        health["snapshot_version"] = self._service.registry.version
        return health

    async def session(self, session_id: str) -> dict[str, Any] | None:
        return self._service.sessions.describe(session_id)

    async def store_digest(self) -> dict[str, Any]:
        return self._service.store_digest()

    async def aclose(self) -> None:
        """Nothing to release; the caller owns the service lifecycle."""


class _Connection:
    """One keep-alive client connection (reader/writer pair)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class HttpClient:
    """A :class:`VoiceClient` speaking HTTP/1.1 to a voice server.

    Parameters
    ----------
    host / port:
        The server's bind address (see
        :attr:`repro.api.http_server.VoiceHttpServer.port` for the
        resolved ephemeral port).
    max_connections:
        Bound on concurrently open keep-alive connections; ``ask``
        callers beyond it wait for a connection to free up.
    timeout:
        Seconds allowed per request round-trip.
    overload_retries:
        Times :meth:`ask` re-submits after a 503 before surfacing
        :class:`ServiceOverloadedError`.  A 503 means the request was
        rejected *before* processing, so re-submitting cannot double-
        apply anything.  0 disables retrying.
    retry_backoff:
        Base of the capped exponential backoff (seconds, with up to 10%
        deterministic jitter) between 503 retries — used when the
        server sends no ``Retry-After`` hint; a hint takes precedence
        (clamped to ``MAX_RETRY_AFTER_SECONDS``).
    retry_seed:
        Seed of the jitter RNG, keeping retry pacing reproducible.

    Connections are pooled and reused across requests (HTTP/1.1
    keep-alive); a connection the server closed between requests is
    retried once on a fresh one.
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_connections: int = 8,
        timeout: float = 30.0,
        overload_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_seed: int = 0,
    ):
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        if overload_retries < 0:
            raise ValueError(f"overload_retries must be >= 0, got {overload_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._overload_retries = int(overload_retries)
        self._retry_backoff = float(retry_backoff)
        self._jitter = random.Random(retry_seed)
        self._limiter = asyncio.Semaphore(max_connections)
        self._idle: list[_Connection] = []
        self._closed = False

    async def __aenter__(self) -> "HttpClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    @property
    def address(self) -> str:
        """The server base URL this client talks to."""
        return f"http://{self._host}:{self._port}"

    # ------------------------------------------------------------------
    # VoiceClient surface
    # ------------------------------------------------------------------
    async def ask(self, request: VoiceRequest | str) -> VoiceResponse:
        request = _as_request(request)
        body = request.to_dict()
        for attempt in range(self._overload_retries + 1):
            status, payload, retry_after = await self._request(
                "POST", "/v1/ask", body=body
            )
            if status == 200:
                try:
                    return response_from_dict(payload)
                except EnvelopeError as exc:
                    raise VoiceApiError(
                        f"server sent a malformed envelope: {exc}"
                    ) from exc
            if status == 503:
                # Backpressure: the request was rejected before any
                # processing, so re-submitting is always safe.  Honor
                # the server's Retry-After pacing hint when present.
                if attempt < self._overload_retries:
                    await asyncio.sleep(self._retry_delay(attempt, retry_after))
                    continue
                raise ServiceOverloadedError(
                    str(payload.get("error", "service overloaded")), status=503
                )
            raise VoiceApiError(
                f"POST /v1/ask failed with {status}: {payload.get('error', payload)}",
                status=status,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def _retry_delay(self, attempt: int, retry_after: float | None) -> float:
        if retry_after is not None:
            delay = min(retry_after, MAX_RETRY_AFTER_SECONDS)
        else:
            delay = min(1.0, self._retry_backoff * 2**attempt)
        return delay * (1.0 + 0.1 * self._jitter.random())

    async def append(self, rows: list) -> dict[str, Any]:
        status, payload, _ = await self._request(
            "POST", "/v1/append", body={"rows": rows}
        )
        if status == 202:
            return payload
        if status == 503:
            # Unlike /v1/ask overload, appends are not auto-retried: a
            # breaker-open 503 will keep failing for the cooldown, and
            # the caller owns the decision to buffer or drop.  Same
            # exception type the in-process transport raises.
            raise MaintenanceUnavailableError(
                str(payload.get("error", "maintenance unavailable"))
            )
        raise VoiceApiError(
            f"POST /v1/append failed with {status}: {payload.get('error', payload)}",
            status=status,
        )

    async def metrics(self) -> dict[str, Any]:
        return await self._get_json("/v1/metrics")

    async def health(self) -> dict[str, Any]:
        return await self._get_json("/healthz")

    async def store_digest(self) -> dict[str, Any]:
        return await self._get_json("/v1/store/digest")

    async def session(self, session_id: str) -> dict[str, Any] | None:
        # Session ids are arbitrary strings; percent-encode so spaces
        # or control characters cannot corrupt the request line.
        path = f"/v1/sessions/{quote(session_id, safe='')}"
        status, payload, _ = await self._request("GET", path)
        if status == 404:
            return None
        if status != 200:
            raise VoiceApiError(f"GET {path} failed with {status}", status=status)
        return payload

    async def aclose(self) -> None:
        """Close every pooled connection."""
        self._closed = True
        while self._idle:
            self._idle.pop().close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _get_json(self, path: str) -> dict[str, Any]:
        status, payload, _ = await self._request("GET", path)
        if status != 200:
            raise VoiceApiError(f"GET {path} failed with {status}", status=status)
        return payload

    async def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict[str, Any], float | None]:
        if self._closed:
            raise VoiceApiError("client is closed")
        async with self._limiter:
            # A pooled connection may have been closed server-side while
            # idle; retry exactly once on a fresh connection.
            for attempt in (0, 1):
                reused = bool(self._idle)
                connection = (
                    self._idle.pop() if self._idle else await self._connect()
                )
                try:
                    result = await asyncio.wait_for(
                        self._round_trip(connection, method, path, body),
                        timeout=self._timeout,
                    )
                except (
                    ConnectionError,
                    asyncio.IncompleteReadError,
                    BrokenPipeError,
                ) as exc:
                    connection.close()
                    if reused and attempt == 0:
                        continue
                    raise VoiceApiError(f"{method} {path}: connection failed: {exc!r}") from exc
                except asyncio.TimeoutError as exc:
                    connection.close()
                    raise VoiceApiError(
                        f"{method} {path}: no response within {self._timeout:.0f}s"
                    ) from exc
                except BaseException:
                    # Protocol errors leave the stream in an unknown
                    # state; never return such a connection to the pool.
                    connection.close()
                    raise
                if self._closed:
                    connection.close()
                else:
                    self._idle.append(connection)
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    async def _connect(self) -> _Connection:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self._host, self._port), timeout=self._timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise VoiceApiError(
                f"cannot connect to {self.address}: {exc!r}"
            ) from exc
        return _Connection(reader, writer)

    async def _round_trip(
        self, connection: _Connection, method: str, path: str, body: dict | None
    ) -> tuple[int, dict[str, Any], float | None]:
        encoded = (
            json.dumps(body, allow_nan=False).encode("utf-8") if body is not None else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            "\r\n"
        )
        connection.writer.write(head.encode("ascii") + encoded)
        await connection.writer.drain()

        status_line = await connection.reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise VoiceApiError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        content_length = 0
        retry_after: float | None = None
        while True:
            line = await connection.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(value.strip())
            elif name == "retry-after":
                # Seconds form only (the HTTP-date form is not worth a
                # parser here); ignore anything unparseable.
                try:
                    retry_after = max(0.0, float(value.strip()))
                except ValueError:
                    pass
        if content_length > MAX_RESPONSE_BYTES:
            raise VoiceApiError(f"response too large ({content_length} bytes)")
        raw = (
            await connection.reader.readexactly(content_length)
            if content_length
            else b""
        )
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            if status == 200:
                # A success response must carry the envelope contract.
                raise VoiceApiError(f"server sent invalid JSON: {exc}") from exc
            # Error bodies may come from intermediaries (load balancers,
            # proxies) that speak plain text or HTML; the status code is
            # the contract then, not the body.  Degrade to a generic
            # payload instead of masking the real failure with a parse
            # error — a plain-text 503 must still read as overload.
            text = raw.decode("utf-8", errors="replace").strip()
            payload = {
                "code": "non_json_body",
                "error": text[:200] or f"HTTP {status} with non-JSON body",
            }
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return status, payload, retry_after
