"""The stdlib-asyncio HTTP front-end over the serving service.

:class:`VoiceHttpServer` turns a running
:class:`repro.serving.service.VoiceService` into a network endpoint
using nothing beyond ``asyncio.start_server`` — no third-party web
framework, matching the repo's no-new-dependencies constraint.  It
speaks enough HTTP/1.1 for real clients: keep-alive connections,
``Content-Length`` framing, JSON bodies, meaningful status codes.

Endpoints (the ``/v1`` public contract)
---------------------------------------
``POST /v1/ask``
    Body: a :class:`repro.api.envelopes.VoiceRequest` envelope
    (``{"schema_version": 1, "text": ..., "session_id": ...,
    "request_id": ...}``).  Answer: the response envelope from
    :func:`repro.api.envelopes.response_to_dict`, echoing
    ``request_id``.  ``400`` for malformed envelopes, ``503`` when
    admission control rejects the request (backpressure), ``500`` for
    unexpected engine errors.
``POST /v1/append``
    Body: ``{"rows": [...]}`` where each row is an object keyed by
    column name or an array in schema order.  Queues the rows for
    background maintenance and answers ``202 Accepted`` with
    ``{"accepted_rows": n, "journal_seq": seq}`` — when the service
    has a ``data_dir``, the batch is journaled before the 202, so the
    ack is durable across crashes (``journal_seq`` is null otherwise).
    ``400`` for rows that do not match the table schema, ``503`` with
    code ``maintenance_unavailable`` while the maintenance circuit
    breaker is open.
``GET /v1/metrics``
    The service's aggregate metrics summary
    (:meth:`repro.serving.service.ServiceMetrics.summary`) plus the
    current snapshot version and live session count.
``GET /v1/store/digest``
    A sha256 digest of the current snapshot's canonical store payload
    (single service), or every shard's digest plus a ``consistent``
    flag (sharded backend) — the byte-parity probe for snapshot
    barriers.
``GET /v1/sessions/<id>``
    Summary of one session (request count, timestamps, last response
    envelope); ``404`` for unknown or evicted sessions.
``GET /healthz``
    Liveness and readiness: ``200 {"status": "ok"|"degraded", "reasons":
    [...]}`` while the service answers (degraded = impaired but serving,
    e.g. the worker pool fell back to serial or the maintenance breaker
    is open), ``503 {"status": "draining"}`` once it is stopping.
    (Unversioned by convention, like Kubernetes probes.)

Anything else is ``404``; non-GET/POST methods are ``405``; bodies
beyond ``MAX_BODY_BYTES`` are ``413``.

Error bodies are machine-readable: every non-200 carries a stable
``code`` field (e.g. ``overloaded``, ``bad_envelope``, ``internal_error``)
next to a human-readable ``error``.  Unexpected exception detail goes to
the server-side log only — ``repr(exc)`` of an engine bug is debugging
surface for operators, not response surface for clients.  ``503``
responses carry a ``Retry-After`` hint so well-behaved clients back off.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import logging
from typing import Any
from urllib.parse import unquote

from repro.api.envelopes import EnvelopeError, VoiceRequest, response_to_dict
from repro.api.errors import MaintenanceUnavailableError, ServiceOverloadedError
from repro.reliability import faults

#: Bytes allowed in one request body (voice transcripts are tiny; this
#: only bounds hostile input).
MAX_BODY_BYTES = 1 * 1024 * 1024

#: Back-off hint (seconds) sent with every 503.
RETRY_AFTER_SECONDS = 1

logger = logging.getLogger(__name__)

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _maybe_await(value):
    """Resolve a backend result that may be a coroutine.

    The server fronts either a :class:`VoiceService` (sync accessors)
    or a :class:`repro.serving.sharding.ShardManager` (fan-out
    accessors are coroutines); this keeps the routing code shared.
    """
    if inspect.isawaitable(value):
        return await value
    return value


class VoiceHttpServer:
    """Serve a :class:`VoiceService` over HTTP (see module docstring).

    Parameters
    ----------
    service:
        A started :class:`repro.serving.service.VoiceService`; the
        server forwards ``/v1/ask`` bodies to ``service.submit`` and
        reads metrics/sessions from the service's accessors.
    host / port:
        Bind address; port 0 picks an ephemeral port, readable from
        :attr:`port` once started.

    Use as an async context manager, or :meth:`start` / :meth:`stop`
    from the same event loop that runs the service.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self._service = service
        self._host = host
        self._requested_port = int(port)
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "VoiceHttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("HTTP server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )

    async def stop(self) -> None:
        """Stop accepting connections and close the listening sockets.

        In-flight request handlers finish on their own; the underlying
        service keeps running (the caller owns its lifecycle).
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._server is not None

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 once started)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    @property
    def address(self) -> str:
        """The server's base URL."""
        return f"http://{self._host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body, error = request
                if error is not None:
                    # Protocol-level failure (bad framing, over-large
                    # body): answer it and close — the stream position
                    # is no longer trustworthy.
                    self._write_response(writer, *error, keep_alive=False)
                    await writer.drain()
                    break
                status, payload = await self._dispatch(method, path, body)
                if faults.FAILPOINTS.fires(faults.HTTP_DROP):
                    # The http.drop failpoint: hang up without writing
                    # the response, like a crashed proxy would.
                    break
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,  # StreamReader wraps an over-limit readline in it
        ):
            pass  # client went away or sent unframeable bytes mid-request
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes, tuple[int, dict] | None] | None:
        """Parse one request; None on a cleanly closed connection.

        The last tuple element carries a protocol-level error response
        ``(status, payload)`` — set for unparseable ``Content-Length``
        or an over-large body — so transport failures answer cleanly
        instead of raising in the connection handler.
        """
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, raw_path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        # Ignore any query string; the /v1 contract carries everything
        # in the JSON body.
        path = raw_path.split("?", 1)[0]
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0:
            error = (
                400,
                {"code": "bad_content_length", "error": "malformed Content-Length header"},
            )
            return method, path, headers, b"", error
        if length > MAX_BODY_BYTES:
            error = (
                413,
                {
                    "code": "body_too_large",
                    "error": f"request body exceeds {MAX_BODY_BYTES} bytes",
                },
            )
            return method, path, headers, b"", error
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body, None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        if path == "/v1/ask":
            if method != "POST":
                return 405, {"code": "method_not_allowed", "error": "use POST for /v1/ask"}
            return await self._handle_ask(body)
        if path == "/v1/append":
            if method != "POST":
                return 405, {
                    "code": "method_not_allowed",
                    "error": "use POST for /v1/append",
                }
            return await self._handle_append(body)
        if path == "/v1/metrics":
            if method != "GET":
                return 405, {"code": "method_not_allowed", "error": "use GET for /v1/metrics"}
            return 200, await self._metrics_payload()
        if path == "/v1/store/digest":
            if method != "GET":
                return 405, {
                    "code": "method_not_allowed",
                    "error": "use GET for /v1/store/digest",
                }
            return 200, await _maybe_await(self._service.store_digest())
        if path.startswith("/v1/sessions/"):
            if method != "GET":
                return 405, {
                    "code": "method_not_allowed",
                    "error": "use GET for /v1/sessions/<id>",
                }
            session_id = unquote(path[len("/v1/sessions/"):])
            summary = await _maybe_await(self._service.sessions.describe(session_id))
            if summary is None:
                return 404, {"code": "unknown_session", "error": f"unknown session {session_id!r}"}
            return 200, summary
        if path == "/healthz":
            if method != "GET":
                return 405, {"code": "method_not_allowed", "error": "use GET for /healthz"}
            health = self._service.health()
            health["snapshot_version"] = self._service.registry.version
            # Degraded still answers requests — probes must keep routing
            # traffic here (200), just with the reasons on display.
            status = 200 if health["status"] in ("ok", "degraded") else 503
            return status, health
        return 404, {"code": "not_found", "error": f"no route for {path}"}

    async def _handle_ask(self, body: bytes) -> tuple[int, dict[str, Any] | bytes]:
        relay = getattr(self._service, "relay_ask", None)
        if relay is not None:
            # Sharded backend: hand the raw body to the router and the
            # shard's raw response bytes straight back — the router
            # never decodes the envelope, so one front process can
            # carry the aggregate throughput of many shards.
            try:
                return await relay(body)
            except Exception:
                logger.exception("shard relay failed for /v1/ask")
                return 500, {"code": "internal_error", "error": "internal server error"}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            return 400, {"code": "bad_json", "error": f"request body is not valid JSON: {exc}"}
        try:
            request = VoiceRequest.from_dict(payload)
        except EnvelopeError as exc:
            return 400, {"code": "bad_envelope", "error": str(exc)}
        try:
            response = await self._service.submit(request)
        except ServiceOverloadedError as exc:
            return 503, {"code": "overloaded", "error": str(exc)}
        except RuntimeError as exc:
            # "service is not running": shutting down under the client.
            return 503, {"code": "draining", "error": str(exc)}
        except Exception:
            # Engine bug — answer, don't kill the socket.  The repr
            # goes to the server log; clients get a stable code, not
            # internals that leak paths or table contents.
            logger.exception("unhandled error answering /v1/ask")
            return 500, {"code": "internal_error", "error": "internal server error"}
        try:
            return 200, response_to_dict(response, request_id=request.request_id)
        except EnvelopeError:
            # A response that violates its own wire contract is a server
            # bug; report it as one instead of dropping the connection.
            logger.exception("response envelope encoding failed for /v1/ask")
            return 500, {"code": "encode_failed", "error": "response encoding failed"}

    async def _handle_append(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            return 400, {"code": "bad_json", "error": f"request body is not valid JSON: {exc}"}
        rows = payload.get("rows") if isinstance(payload, dict) else None
        if not isinstance(rows, list) or not rows:
            return 400, {
                "code": "bad_append",
                "error": 'append body must be {"rows": [...]} with at least one row',
            }
        try:
            table = self._service.build_append_table(rows)
        except EnvelopeError as exc:
            return 400, {"code": "bad_append", "error": str(exc)}
        try:
            seq = await _maybe_await(self._service.request_append(table))
        except MaintenanceUnavailableError as exc:
            return 503, {"code": "maintenance_unavailable", "error": str(exc)}
        except faults.InjectedFault:
            # A raising journal failpoint is a stand-in for a real
            # journal-write failure; report it as one, not as draining
            # (InjectedFault subclasses RuntimeError).
            logger.exception("unhandled error accepting /v1/append")
            return 500, {"code": "internal_error", "error": "internal server error"}
        except RuntimeError as exc:
            return 503, {"code": "draining", "error": str(exc)}
        except Exception:
            # Journal-write failures land here: the batch was NOT
            # accepted (nothing persisted, nothing queued), which the
            # 500 tells the client truthfully.
            logger.exception("unhandled error accepting /v1/append")
            return 500, {"code": "internal_error", "error": "internal server error"}
        return 202, {"accepted_rows": table.num_rows, "journal_seq": seq}

    async def _metrics_payload(self) -> dict[str, Any]:
        summary = await _maybe_await(self._service.metrics_summary())
        summary["snapshot_version"] = self._service.registry.version
        summary["sessions"] = len(self._service.sessions)
        summary["queue_depth"] = self._service.queue_depth
        return summary

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------
    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any] | bytes,
        keep_alive: bool,
    ) -> None:
        try:
            # Relayed shard responses arrive pre-encoded; frame them
            # as-is instead of decoding and re-encoding JSON.
            body = (
                bytes(payload)
                if isinstance(payload, (bytes, bytearray))
                else json.dumps(payload, allow_nan=False).encode("utf-8")
            )
        except (TypeError, ValueError) as exc:
            # A payload json can't encode (non-finite metric, stray
            # object) must still answer — a raised ValueError here would
            # be swallowed by the framing-error catch and silently drop
            # the connection.
            status = 500
            body = json.dumps(
                {"code": "encode_failed", "error": f"response serialization failed: {exc}"}
            ).encode("utf-8")
        retry_after = (
            f"Retry-After: {RETRY_AFTER_SECONDS}\r\n" if status == 503 else ""
        )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_after}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + body)
