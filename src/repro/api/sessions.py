"""Bounded per-session state for the serving path.

The interactive engine keeps one
:class:`repro.system.engine.SessionState` for its single caller; a
service answering millions of users needs one *per conversation*,
bounded so abandoned sessions cannot grow memory forever.
:class:`SessionStore` is that container: an LRU mapping ``session_id ->
SessionState`` with O(1) lookup, record and eviction.

Design notes
------------
* The stored value is the engine's own ``SessionState`` and responses
  are recorded through its ``observe`` — the exact code path
  :meth:`VoiceQueryEngine.ask` uses — so a REPEAT answered via the
  service replays byte-identical text to an interactive replay of the
  same history.
* All operations take a plain ``threading.Lock`` for a handful of dict
  operations.  The serving fast path holds it for sub-microsecond
  critical sections, and only for requests that carry a ``session_id``
  at all; session-less traffic never touches the store.
* Evicting a session drops its repeat-state: a later request with the
  evicted id is treated like a brand-new session (degrades to the
  stateless answer, never an error).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator

from repro.api.config import DEFAULT_SESSION_CAPACITY
from repro.api.envelopes import SCHEMA_VERSION, response_to_dict
from repro.system.engine import SessionState, VoiceResponse
from repro.system.nlq import ParsedRequest

#: Exchanges kept per session log (oldest roll off).  Bounds what one
#: hot network session can hold in memory; the true exchange count is
#: still reported (``SessionState.handled``), and repeat-state is
#: independent of the log.
DEFAULT_SESSION_LOG_LIMIT = 256


class SessionStore:
    """A bounded LRU of per-session repeat-state and session logs.

    Parameters
    ----------
    capacity:
        Maximum live sessions; the least-recently-*used* session is
        evicted when a new one would exceed it.  Every :meth:`get` /
        :meth:`record` touch refreshes recency.
    log_limit:
        Exchanges kept per session log; None keeps every exchange
        (the interactive engine's behavior — unsafe against untrusted
        traffic).
    clock:
        Timestamp source (override in tests); defaults to
        :func:`time.time`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SESSION_CAPACITY,
        log_limit: int | None = DEFAULT_SESSION_LOG_LIMIT,
        clock=time.time,
    ):
        if capacity < 1:
            raise ValueError(f"session capacity must be >= 1, got {capacity}")
        if log_limit is not None and log_limit < 1:
            raise ValueError(f"log_limit must be >= 1 or None, got {log_limit}")
        self._capacity = int(capacity)
        self._log_limit = log_limit
        self._clock = clock
        self._lock = threading.Lock()
        # dicts preserve insertion order; recency = re-insertion order.
        self._sessions: dict[str, SessionState] = {}
        self._created_at: dict[str, float] = {}
        self._last_used_at: dict[str, float] = {}
        self._evicted = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum live sessions before LRU eviction."""
        return self._capacity

    @property
    def evicted(self) -> int:
        """Sessions evicted so far (monotonic counter)."""
        return self._evicted

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def session_ids(self) -> Iterator[str]:
        """Live session ids, least- to most-recently used."""
        with self._lock:
            return iter(list(self._sessions))

    # ------------------------------------------------------------------
    # Request-path operations
    # ------------------------------------------------------------------
    def last_response(self, session_id: str) -> VoiceResponse | None:
        """The session's repeat-state (None for unknown/evicted ids).

        Touches recency, so a session kept alive purely by "repeat"
        requests is not evicted under ones that also ask new questions.
        """
        with self._lock:
            state = self._touch(session_id)
            return state.last_response if state is not None else None

    def record(
        self, session_id: str, parsed: ParsedRequest, response: VoiceResponse
    ) -> SessionState:
        """Record one handled exchange, creating the session if needed.

        Recording is exactly :meth:`SessionState.observe` — the
        interactive engine's own bookkeeping — under the store lock.
        """
        with self._lock:
            state = self._touch(session_id)
            if state is None:
                state = self._create(session_id)
            state.observe(parsed, response)
            return state

    # ------------------------------------------------------------------
    # Introspection for the HTTP front-end
    # ------------------------------------------------------------------
    def describe(self, session_id: str) -> dict[str, Any] | None:
        """A JSON-ready summary of one session (None when unknown).

        Read-only: does *not* touch recency, so monitoring a session
        does not keep it alive.
        """
        with self._lock:
            state = self._sessions.get(session_id)
            if state is None:
                return None
            return {
                "schema_version": SCHEMA_VERSION,
                "session_id": session_id,
                "requests": state.handled,
                "created_at": self._created_at[session_id],
                "last_used_at": self._last_used_at[session_id],
                "last_response": (
                    response_to_dict(state.last_response)
                    if state.last_response is not None
                    else None
                ),
            }

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _touch(self, session_id: str) -> SessionState | None:
        state = self._sessions.pop(session_id, None)
        if state is None:
            return None
        self._sessions[session_id] = state  # re-insert = most recent
        self._last_used_at[session_id] = self._clock()
        return state

    def _create(self, session_id: str) -> SessionState:
        while len(self._sessions) >= self._capacity:
            oldest = next(iter(self._sessions))
            del self._sessions[oldest]
            del self._created_at[oldest]
            del self._last_used_at[oldest]
            self._evicted += 1
        state = SessionState(log_limit=self._log_limit)
        now = self._clock()
        self._sessions[session_id] = state
        self._created_at[session_id] = now
        self._last_used_at[session_id] = now
        return state
