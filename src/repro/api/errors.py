"""Error types shared by every transport of the public API.

Defined here — below both the serving layer and the transports — so the
:class:`repro.api.clients.HttpClient` can raise the *same* exception
types an :class:`repro.api.clients.InProcessClient` caller sees, and
callers can switch transports without changing their error handling.
"""

from __future__ import annotations


class VoiceApiError(RuntimeError):
    """A request failed at the API layer (transport, protocol, server).

    Attributes
    ----------
    status:
        The HTTP status code when the failure came over HTTP, else None.
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServiceOverloadedError(VoiceApiError):
    """The service's admission control rejected the request.

    Raised by :meth:`repro.serving.service.VoiceService.submit` when
    ``max_queue_depth`` requests are already waiting, and by
    :class:`repro.api.clients.HttpClient` when the server answered 503
    — the same backpressure signal on every transport.
    """


class MaintenanceUnavailableError(VoiceApiError):
    """Appended rows were rejected because maintenance is unavailable.

    Raised by
    :meth:`repro.serving.scheduler.MaintenanceScheduler.request_append`
    while its circuit breaker is open: after ``breaker_threshold``
    consecutive job failures the scheduler stops accepting new appends
    (each would join a payload that keeps failing) until a cooldown
    passes and a half-open probe succeeds.  Callers should surface the
    rejection to the writer rather than drop rows silently.
    """

    def __init__(self, message: str, status: int | None = 503):
        super().__init__(message, status=status)
