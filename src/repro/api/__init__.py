"""The system's public API: one typed surface for every request path.

Before this package, callers reached the reproduction through two
disjoint, in-process-only surfaces: the stateful single-caller
:meth:`repro.system.engine.VoiceQueryEngine.ask` and the stateless
:meth:`repro.serving.service.VoiceService.submit`.  ``repro.api`` is
the deliberate redesign that merges them into a single versioned
contract a network deployment can expose:

* :mod:`repro.api.envelopes` — the wire types.  A
  :class:`VoiceRequest` (``text`` + optional ``session_id`` /
  ``request_id``) and a lossless JSON encoding of the engine's
  :class:`repro.system.engine.VoiceResponse`, both tagged with
  ``schema_version`` so the contract can evolve.
* :mod:`repro.api.sessions` — :class:`SessionStore`, a bounded LRU of
  per-session repeat-state built on the engine's own
  :class:`repro.system.engine.SessionState`, so a "repeat" through the
  service replays exactly what the interactive engine would.
* :mod:`repro.api.config` — :class:`ServingConfig`, the one dataclass
  holding every serving knob (concurrency, queue depth, executor and
  maintenance workers, session capacity, HTTP bind address), consumed
  by :class:`repro.serving.service.VoiceService`, the CLI ``serve``
  command and the serving benchmark.
* :mod:`repro.api.clients` — the transport-agnostic
  :class:`VoiceClient` protocol with two implementations:
  :class:`InProcessClient` (wraps a :class:`VoiceService` in the same
  event loop) and :class:`HttpClient` (speaks HTTP/1.1 to a server,
  pooling keep-alive connections).
* :mod:`repro.api.http_server` — :class:`VoiceHttpServer`, a
  stdlib-asyncio HTTP front-end exposing ``POST /v1/ask``,
  ``GET /v1/metrics``, ``GET /healthz`` and ``GET /v1/sessions/<id>``.

Code that talks *to* the system should import from here; the engine and
serving internals stay free to evolve behind the envelope contract.
"""

from repro.api.clients import HttpClient, InProcessClient, VoiceClient
from repro.api.config import ServingConfig
from repro.api.envelopes import (
    SCHEMA_VERSION,
    EnvelopeError,
    VoiceRequest,
    response_from_dict,
    response_to_dict,
)
from repro.api.errors import ServiceOverloadedError, VoiceApiError
from repro.api.http_server import VoiceHttpServer
from repro.api.sessions import SessionStore

__all__ = [
    "SCHEMA_VERSION",
    "EnvelopeError",
    "HttpClient",
    "InProcessClient",
    "ServiceOverloadedError",
    "ServingConfig",
    "SessionStore",
    "VoiceApiError",
    "VoiceClient",
    "VoiceHttpServer",
    "VoiceRequest",
    "response_from_dict",
    "response_to_dict",
]
