"""Deployment simulation: synthetic voice-request logs.

The paper analyses the last 50 requests of three public Google
Assistant deployments (Table III) and classifies data-access queries by
predicate count and by type (Figure 9).  Real logs are unavailable, so
this module simulates a deployment: it draws a request mix matching the
paper's observed proportions, renders each request as natural-language
text over the configured dataset, and optionally feeds the requests to
a :class:`VoiceQueryEngine` so the full run-time path is exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.relational.table import Table
from repro.system.classification import RequestType
from repro.system.config import SummarizationConfig
from repro.system.engine import VoiceQueryEngine, VoiceResponse


#: Request-type mix observed in the paper (Table III), per deployment.
PAPER_REQUEST_MIX: dict[str, dict[RequestType, int]] = {
    "primaries": {
        RequestType.HELP: 17,
        RequestType.REPEAT: 3,
        RequestType.SUPPORTED_QUERY: 16,
        RequestType.UNSUPPORTED_QUERY: 1,
        RequestType.OTHER: 13,
    },
    "flights": {
        RequestType.HELP: 9,
        RequestType.REPEAT: 0,
        RequestType.SUPPORTED_QUERY: 12,
        RequestType.UNSUPPORTED_QUERY: 5,
        RequestType.OTHER: 24,
    },
    "developers": {
        RequestType.HELP: 4,
        RequestType.REPEAT: 0,
        RequestType.SUPPORTED_QUERY: 13,
        RequestType.UNSUPPORTED_QUERY: 16,
        RequestType.OTHER: 17,
    },
}

#: Predicate-count mix for retrieval queries (Figure 9(a)): most queries
#: use a single predicate.
PAPER_PREDICATE_MIX: dict[int, int] = {0: 15, 1: 47, 2: 1}

_HELP_TEXTS = [
    "help",
    "what can I ask you",
    "how do I use this",
    "what can you do",
]
_REPEAT_TEXTS = [
    "repeat that please",
    "can you say that again",
]
_OTHER_TEXTS = [
    "thank you",
    "stop",
    "play some music",
    "good morning",
    "never mind",
]


@dataclass
class QueryLogEntry:
    """One simulated voice request with its ground-truth category."""

    text: str
    intended_type: RequestType
    predicates: int = 0
    response: VoiceResponse | None = None


@dataclass
class DeploymentSimulator:
    """Generates and (optionally) replays synthetic request logs.

    Parameters
    ----------
    config:
        Summarization configuration of the deployment.
    table:
        The deployed data table (provides predicate values).
    seed:
        RNG seed for reproducible logs.
    """

    config: SummarizationConfig
    table: Table
    seed: int = 11
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Log generation
    # ------------------------------------------------------------------
    def generate_log(
        self,
        request_mix: dict[RequestType, int] | None = None,
        deployment: str = "flights",
    ) -> list[QueryLogEntry]:
        """Generate one log following ``request_mix`` (paper mix by default)."""
        mix = request_mix or PAPER_REQUEST_MIX.get(deployment, PAPER_REQUEST_MIX["flights"])
        entries: list[QueryLogEntry] = []
        for request_type, count in mix.items():
            for _ in range(count):
                entries.append(self._generate_entry(request_type))
        self._rng.shuffle(entries)
        return entries

    def replay(self, engine: VoiceQueryEngine, log: Sequence[QueryLogEntry]) -> list[QueryLogEntry]:
        """Send every log entry to the engine and attach the responses."""
        replayed = []
        for entry in log:
            response = engine.ask(entry.text)
            replayed.append(
                QueryLogEntry(
                    text=entry.text,
                    intended_type=entry.intended_type,
                    predicates=entry.predicates,
                    response=response,
                )
            )
        return replayed

    # ------------------------------------------------------------------
    # Request text construction
    # ------------------------------------------------------------------
    def _generate_entry(self, request_type: RequestType) -> QueryLogEntry:
        if request_type is RequestType.HELP:
            return QueryLogEntry(self._rng.choice(_HELP_TEXTS), request_type)
        if request_type is RequestType.REPEAT:
            return QueryLogEntry(self._rng.choice(_REPEAT_TEXTS), request_type)
        if request_type is RequestType.OTHER:
            return QueryLogEntry(self._rng.choice(_OTHER_TEXTS), request_type)
        if request_type is RequestType.SUPPORTED_QUERY:
            return self._supported_query_entry()
        return self._unsupported_query_entry()

    def _supported_query_entry(self) -> QueryLogEntry:
        predicate_counts = list(PAPER_PREDICATE_MIX)
        weights = [PAPER_PREDICATE_MIX[c] for c in predicate_counts]
        count = self._rng.choices(predicate_counts, weights=weights)[0]
        count = min(count, self.config.max_query_length, len(self.config.dimensions))
        target = self._rng.choice(list(self.config.targets)).replace("_", " ")
        dims = self._rng.sample(list(self.config.dimensions), count)
        values = [self._random_value(dim) for dim in dims]
        if count == 0:
            text = f"what is the {target} overall"
        else:
            restriction = " and ".join(str(v) for v in values)
            text = f"what is the {target} for {restriction}"
        return QueryLogEntry(text, RequestType.SUPPORTED_QUERY, predicates=count)

    def _unsupported_query_entry(self) -> QueryLogEntry:
        target = self._rng.choice(list(self.config.targets)).replace("_", " ")
        dimension = self._rng.choice(list(self.config.dimensions))
        value_a = self._random_value(dimension)
        value_b = self._random_value(dimension)
        flavour = self._rng.random()
        if flavour < 0.4:
            text = f"make a comparison of {target} between {value_a} and {value_b}"
        elif flavour < 0.8:
            text = f"which {dimension.replace('_', ' ')} has the highest {target}"
        else:
            text = f"what is the {target} of item number {self._rng.randint(100, 999)}"
        return QueryLogEntry(text, RequestType.UNSUPPORTED_QUERY, predicates=2)

    def _random_value(self, dimension: str):
        values = self.table.column(dimension).distinct_values()
        return self._rng.choice(values)
