"""Incremental maintenance of the speech store.

The paper's deployment assumes static data: "As long as data remain
static, significant pre-processing overheads can be amortized over many
queries" (Section VIII-E).  When new rows arrive (new flights, new poll
results), re-running the full pre-processing batch is wasteful — only
the speeches whose data subsets contain at least one new row can
change.  :class:`IncrementalMaintainer` appends the new rows, finds the
affected queries, and re-summarizes exactly those, leaving the rest of
the store untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algorithms.base import Summarizer
from repro.core.expectation import ExpectationModel
from repro.core.priors import Prior
from repro.relational.table import Table
from repro.system.config import SummarizationConfig
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech
from repro.system.templates import SpeechRealizer


@dataclass
class MaintenanceReport:
    """Outcome of one incremental maintenance pass.

    Attributes
    ----------
    new_rows:
        Number of appended rows.
    affected_queries:
        Queries whose data subset gained at least one new row.
    rebuilt_speeches:
        Speeches actually regenerated (affected queries whose subsets
        are still summarizable).
    unchanged_speeches:
        Speeches left untouched in the store.
    total_seconds:
        Wall-clock time of the maintenance pass.
    """

    new_rows: int = 0
    affected_queries: int = 0
    rebuilt_speeches: int = 0
    unchanged_speeches: int = 0
    total_seconds: float = 0.0
    rebuilt_labels: list[str] = field(default_factory=list)


class IncrementalMaintainer:
    """Keeps a speech store in sync with an append-only table.

    Parameters
    ----------
    config:
        The deployment's summarization configuration.
    table:
        The current table contents (before updates).
    summarizer / realizer / prior / expectation_model:
        Forwarded to the rebuild pre-processor; defaults match
        :class:`repro.system.preprocessor.Preprocessor`.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        table: Table,
        summarizer: Summarizer | None = None,
        realizer: SpeechRealizer | None = None,
        prior: Prior | None = None,
        expectation_model: ExpectationModel | None = None,
    ):
        self._config = config
        self._table = table
        self._summarizer = summarizer
        self._realizer = realizer or SpeechRealizer()
        self._prior = prior
        self._expectation_model = expectation_model

    @property
    def table(self) -> Table:
        """The current table (including all applied updates)."""
        return self._table

    # ------------------------------------------------------------------
    # Change analysis
    # ------------------------------------------------------------------
    def affected_queries(self, new_rows: Table) -> list[DataQuery]:
        """Queries whose data subset contains at least one new row.

        The empty-predicate query is always affected; a predicated query
        is affected when some new row carries exactly its dimension
        values.  Queries are enumerated against the *updated* table so
        previously unseen dimension values produce new queries too.
        """
        updated = self._table.concat(new_rows)
        generator = ProblemGenerator(
            self._config,
            updated,
            prior=self._prior,
            expectation_model=self._expectation_model,
        )
        new_row_dicts = list(new_rows.iter_rows())
        affected = []
        for query in generator.enumerate_queries():
            scope = query.scope()
            if any(scope.contains_row(row) for row in new_row_dicts):
                affected.append(query)
        return affected

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply_appended_rows(self, new_rows: Table, store: SpeechStore) -> MaintenanceReport:
        """Append ``new_rows`` and refresh every affected speech in ``store``.

        The store is modified in place; speeches for unaffected queries
        are left exactly as they were.
        """
        start = time.perf_counter()
        report = MaintenanceReport(new_rows=new_rows.num_rows)
        before = len(store)

        affected = self.affected_queries(new_rows)
        report.affected_queries = len(affected)

        self._table = self._table.concat(new_rows)
        generator = ProblemGenerator(
            self._config,
            self._table,
            prior=self._prior,
            expectation_model=self._expectation_model,
        )
        preprocessor = Preprocessor(
            self._config, summarizer=self._summarizer, realizer=self._realizer
        )

        for query in affected:
            problem = generator.build_problem(query)
            if problem is None:
                continue
            outcome = preprocessor.summarizer.summarize(problem)
            text = self._realizer.realize(query, outcome.speech)
            store.add(
                StoredSpeech(
                    query=query,
                    speech=outcome.speech,
                    text=text,
                    utility=outcome.utility,
                    scaled_utility=outcome.scaled_utility,
                    algorithm=outcome.algorithm,
                )
            )
            report.rebuilt_speeches += 1
            report.rebuilt_labels.append(query.describe())

        report.unchanged_speeches = max(0, before - report.rebuilt_speeches)
        report.total_seconds = time.perf_counter() - start
        return report
