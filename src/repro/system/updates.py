"""Incremental maintenance of the speech store.

The paper's deployment assumes static data: "As long as data remain
static, significant pre-processing overheads can be amortized over many
queries" (Section VIII-E).  When new rows arrive (new flights, new poll
results), re-running the full pre-processing batch is wasteful — only
the speeches whose data subsets contain at least one new row can
change.  :class:`IncrementalMaintainer` appends the new rows, finds the
affected queries, and re-summarizes exactly those, leaving the rest of
the store untouched.

Maintenance is built on the same streaming service layer as batch
pre-processing.  Affected-query discovery no longer probes every query
against every new row in Python: the new rows' dimension values are
folded into one membership set per predicate column combination, so
each enumerated query costs one set probe instead of
O(new rows × predicates) dict lookups.  Re-summarization fans out over
a :class:`repro.system.worker_pool.WorkerPool` (``workers=N``, or a
caller-owned ``pool=`` shared with the pre-processor), with the
order-preserving merge keeping the maintained store identical to a
serial pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Iterator

from repro.algorithms.base import Summarizer
from repro.core.expectation import ExpectationModel
from repro.core.priors import Prior
from repro.relational.table import Table
from repro.system.config import SummarizationConfig
from repro.system.preprocessor import (
    Preprocessor,
    default_chunk_size,
    resolve_parallelism,
    solve_query_chunk,
    stream_solved_chunks,
)
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore
from repro.system.templates import SpeechRealizer
from repro.system.worker_pool import WorkerPool


@dataclass
class MaintenanceReport:
    """Outcome of one incremental maintenance pass.

    Attributes
    ----------
    new_rows:
        Number of appended rows.
    affected_queries:
        Queries whose data subset gained at least one new row.
    rebuilt_speeches:
        Speeches actually regenerated (affected queries whose subsets
        are still summarizable), including speeches for brand-new
        queries introduced by previously unseen dimension values.
    unchanged_speeches:
        Pre-existing speeches left untouched in the store (rebuilds
        that merely *added* a new query's speech do not reduce this).
    total_seconds:
        Wall-clock time of the maintenance pass.
    workers:
        Number of pool workers used for re-summarization (0 = serial).
    """

    new_rows: int = 0
    affected_queries: int = 0
    rebuilt_speeches: int = 0
    unchanged_speeches: int = 0
    total_seconds: float = 0.0
    rebuilt_labels: list[str] = field(default_factory=list)
    workers: int = 0


class IncrementalMaintainer:
    """Keeps a speech store in sync with an append-only table.

    Parameters
    ----------
    config:
        The deployment's summarization configuration.
    table:
        The current table contents (before updates).
    summarizer / realizer / prior / expectation_model:
        Forwarded to the rebuild pre-processor; defaults match
        :class:`repro.system.preprocessor.Preprocessor`.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        table: Table,
        summarizer: Summarizer | None = None,
        realizer: SpeechRealizer | None = None,
        prior: Prior | None = None,
        expectation_model: ExpectationModel | None = None,
    ):
        self._config = config
        self._table = table
        self._summarizer = summarizer
        self._realizer = realizer or SpeechRealizer()
        self._prior = prior
        self._expectation_model = expectation_model

    @property
    def table(self) -> Table:
        """The current table (including all applied updates)."""
        return self._table

    def rollback_table(self, table: Table) -> None:
        """Restore the table after a failed maintenance pass.

        :meth:`maintain` appends the new rows *before* re-summarizing,
        so a pass that fails midway leaves the table advanced past the
        speeches that were actually rebuilt.  Callers that can retry or
        skip a failed batch (the serving scheduler) capture ``table``
        before the pass and restore it here, keeping the maintainer
        consistent with the last successfully published store.
        """
        self._table = table

    # ------------------------------------------------------------------
    # Change analysis
    # ------------------------------------------------------------------
    def affected_queries(self, new_rows: Table) -> list[DataQuery]:
        """Queries whose data subset contains at least one new row.

        The empty-predicate query is always affected; a predicated query
        is affected when some new row carries exactly its dimension
        values.  Queries are enumerated against the *updated* table so
        previously unseen dimension values produce new queries too.

        A query with predicates on columns ``(c1, …, ck)`` gains a row
        exactly when its value tuple appears among the new rows'
        ``(c1, …, ck)`` projections, so matching is one membership probe
        into a per-column-combination set of new-row value tuples —
        built once from the new rows' column arrays — instead of a
        Python predicate scan over every (query, new row) pair.
        """
        updated = self._table.concat(new_rows)
        generator = ProblemGenerator(
            self._config,
            updated,
            prior=self._prior,
            expectation_model=self._expectation_model,
        )
        return list(self._affected_from(generator, new_rows))

    def _affected_from(
        self, generator: ProblemGenerator, new_rows: Table
    ) -> Iterator[DataQuery]:
        """Stream affected queries in enumeration order."""
        if new_rows.num_rows == 0:
            return
        new_values = {
            dim: new_rows.column(dim).values for dim in self._config.dimensions
        }
        # Keys must be in sorted column order: DataQuery canonicalizes
        # its predicates that way, regardless of configuration order.
        sorted_dimensions = sorted(self._config.dimensions)
        combo_sets: dict[tuple[str, ...], set[tuple[Any, ...]]] = {(): set()}
        for length in range(1, self._config.max_query_length + 1):
            for dims in combinations(sorted_dimensions, length):
                combo_sets[dims] = set(zip(*(new_values[dim] for dim in dims)))
        for query in generator.enumerate_queries():
            dims = tuple(column for column, _ in query.predicates)
            if not dims:
                # Empty scope contains every row, hence every new row.
                yield query
            elif tuple(value for _, value in query.predicates) in combo_sets[dims]:
                yield query

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def maintain(
        self,
        new_rows: Table,
        store: SpeechStore,
        workers: int = 0,
        chunk_size: int | None = None,
        pool: WorkerPool | None = None,
    ) -> MaintenanceReport:
        """Append ``new_rows`` and refresh every affected speech in ``store``.

        The store is modified in place; speeches for unaffected queries
        are left exactly as they were.  ``workers`` > 1 fans the
        re-summarization out over a per-call worker pool; passing
        ``pool`` reuses a caller-owned
        :class:`repro.system.worker_pool.WorkerPool` (shared with batch
        pre-processing) instead, amortising process start-up across
        maintenance passes.  Rebuilt speeches are merged back in
        enumeration order, so the maintained store and the report
        counts are identical to a serial pass for any worker count or
        chunk size.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        start = time.perf_counter()

        preprocessor = Preprocessor(
            self._config, summarizer=self._summarizer, realizer=self._realizer
        )
        effective_workers, pool = resolve_parallelism(
            preprocessor.summarizer, workers, pool, verb="maintaining"
        )

        report = MaintenanceReport(
            new_rows=new_rows.num_rows, workers=effective_workers
        )
        before = len(store)

        self._table = self._table.concat(new_rows)
        generator = ProblemGenerator(
            self._config,
            self._table,
            prior=self._prior,
            expectation_model=self._expectation_model,
        )
        affected = list(self._affected_from(generator, new_rows))
        report.affected_queries = len(affected)

        context = (generator, preprocessor.summarizer, self._realizer)
        replaced = 0
        if effective_workers and affected:
            if chunk_size is None:
                chunk_size = default_chunk_size(len(affected), effective_workers)
            chunks = (
                affected[i : i + chunk_size]
                for i in range(0, len(affected), chunk_size)
            )
            for chunk_result in stream_solved_chunks(
                context, chunks, effective_workers, pool
            ):
                replaced += self._merge_outcomes(chunk_result, store, report)
        else:
            replaced = self._merge_outcomes(
                solve_query_chunk(context, affected), store, report
            )

        report.unchanged_speeches = max(0, before - replaced)
        report.total_seconds = time.perf_counter() - start
        return report

    def apply_appended_rows(
        self,
        new_rows: Table,
        store: SpeechStore,
        workers: int = 0,
        chunk_size: int | None = None,
        pool: WorkerPool | None = None,
    ) -> MaintenanceReport:
        """Backward-compatible alias for :meth:`maintain`."""
        return self.maintain(
            new_rows, store, workers=workers, chunk_size=chunk_size, pool=pool
        )

    @staticmethod
    def _merge_outcomes(outcomes, store: SpeechStore, report: MaintenanceReport) -> int:
        """Fold solved outcomes (in enumeration order) into the store.

        Returns how many of them *replaced* an existing speech (as
        opposed to adding one for a brand-new query), so the caller can
        count genuinely untouched speeches.
        """
        replaced = 0
        for outcome in outcomes:
            if outcome is None:
                continue
            stored, _fact_evaluations = outcome
            if store.exact_match(stored.query) is not None:
                replaced += 1
            store.add(stored)
            report.rebuilt_speeches += 1
            report.rebuilt_labels.append(stored.query.describe())
        return replaced
