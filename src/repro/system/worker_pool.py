"""Persistent worker pool: the streaming pre-processing service layer.

PR 2 parallelized :meth:`Preprocessor.run` by forking a fresh
``multiprocessing`` pool on every call.  That is fine for a one-shot
batch, but the ROADMAP's serving scenario re-preprocesses continuously
(incremental maintenance after every data append), and forking a pool —
plus re-shipping the problem generator to every worker — per pass wastes
a fixed start-up cost that a long-lived service can pay once.

:class:`WorkerPool` is that service.  It owns one ``multiprocessing``
pool for its whole lifetime (context-manager scoped, lazily spawned on
first use, gracefully shut down on :meth:`close`) and is shared by
``Preprocessor.run``, ``VoiceQueryEngine.preprocess`` and
``IncrementalMaintainer.maintain``.  Each run supplies

* a *context* — the per-run state workers need (e.g. the problem
  generator, summarizer and realizer), shipped to every worker exactly
  once per run via a barrier broadcast, **not** once per task;
* a module-level *function* ``func(context, chunk) -> result``;
* an iterable of *chunks* (task payloads), typically a streaming
  generator so the full task list is never materialised.

:meth:`imap_chunks` submits chunks with bounded look-ahead and yields
results **in submission order** no matter which worker finished first —
the order-preserving merge that keeps downstream stores byte-identical
to a serial run.  With ``workers <= 1`` the pool degrades to an
in-process serial loop (no processes are ever spawned), so callers need
a single code path.

Implementation notes
--------------------
Pool workers only share state set at fork time, so a *reused* pool must
be able to receive fresh per-run context.  The broadcast protocol:
every context install is tagged with a monotonically increasing token;
``workers`` copies of the install task are submitted, and each blocks on
a ``multiprocessing.Barrier(workers)`` until *all* workers hold the new
context — a worker stuck inside the barrier cannot pick up a second
install task, so exactly one lands on each worker.  Chunk tasks carry
their token and fail loudly on mismatch (only possible for tasks
abandoned by an early-stopped run, whose results nobody reads).

A run stopped early (``max_problems``, a closed iterator) abandons its
in-flight chunks; a worker may legitimately stay busy on one for up to
the chunk timeout — far longer than the broadcast timeout.  The next
run's broadcast therefore first *drains* the abandoned chunks
(:meth:`WorkerPool` records them as the streaming iterator shuts down)
so every worker is at the rendezvous barrier before install tasks are
submitted; without the drain, a >``broadcast_timeout`` abandoned chunk
would break the barrier and kill the pool.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import deque
from typing import Any, Callable, Iterable, Iterator

#: Seconds a context broadcast may take end to end.  Both the workers
#: (inside the barrier) and the parent (waiting on the install results)
#: give up after this, so a worker lost mid-broadcast — OOM-killed
#: while unpickling a big context, say — surfaces as an error instead
#: of a process-wide hang in an untimed ``Barrier.wait``.
BROADCAST_TIMEOUT_SECONDS = 120.0

#: Default ceiling on one chunk's solve time.  ``multiprocessing.Pool``
#: never completes the result of a task whose worker died (it silently
#: respawns the process and drops the task), so an untimed ``get()``
#: would hang forever; a generous bound turns that into a loud error.
CHUNK_TIMEOUT_SECONDS = 3600.0

#: Per-worker installed context: (token, context object).
_WORKER_CONTEXT: tuple[int, Any] | None = None
#: Barrier shared by all workers of one pool (set by the initializer).
_WORKER_BARRIER = None


def _init_worker(barrier) -> None:
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier


def _install_context(
    token: int, context: Any, timeout: float = BROADCAST_TIMEOUT_SECONDS
) -> int:
    """Install one run's context; rendezvous so every worker gets one."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (token, context)
    assert _WORKER_BARRIER is not None, "worker pool not initialized"
    try:
        _WORKER_BARRIER.wait(timeout)
    except threading.BrokenBarrierError:
        raise RuntimeError(f"context broadcast {token} lost a worker mid-rendezvous") from None
    return token


def _run_chunk(token: int, func: Callable, chunk: Any) -> Any:
    """Apply ``func`` to one chunk under the installed context.

    A token mismatch is only possible for tasks abandoned by an
    early-stopped run whose results nobody reads; failing loudly keeps
    that invariant honest.
    """
    if _WORKER_CONTEXT is None or _WORKER_CONTEXT[0] != token:
        raise RuntimeError(f"stale worker-pool task: expected context {token}")
    return func(_WORKER_CONTEXT[1], chunk)


class WorkerPool:
    """A reusable process pool with per-run context broadcast.

    Parameters
    ----------
    workers:
        Number of worker processes.  0 or 1 selects the serial fallback:
        chunks run in the calling process and no pool is ever spawned.
    lookahead:
        Maximum in-flight chunks per worker while streaming (bounds
        memory for generator-fed runs).
    chunk_timeout:
        Seconds one chunk may take before the run is aborted (see
        ``CHUNK_TIMEOUT_SECONDS``); raise it for pathologically large
        chunks rather than disabling it.
    broadcast_timeout:
        Seconds a context broadcast's rendezvous may take (see
        ``BROADCAST_TIMEOUT_SECONDS``).  Abandoned in-flight chunks are
        drained *before* the rendezvous, so this only needs to cover
        context unpickling, not leftover compute.

    The pool is lazy: processes spawn on the first parallel
    :meth:`imap_chunks` call, survive across calls (that is the point),
    and are torn down by :meth:`close` / context-manager exit.  A closed
    pool may be used again — it simply respawns lazily — so "fresh pool
    per run" and "one pool per deployment" are both expressible with the
    same object.
    """

    def __init__(
        self,
        workers: int,
        lookahead: int = 2,
        chunk_timeout: float = CHUNK_TIMEOUT_SECONDS,
        broadcast_timeout: float = BROADCAST_TIMEOUT_SECONDS,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if chunk_timeout <= 0:
            raise ValueError(f"chunk_timeout must be positive, got {chunk_timeout}")
        if broadcast_timeout <= 0:
            raise ValueError(f"broadcast_timeout must be positive, got {broadcast_timeout}")
        self._workers = int(workers)
        self._lookahead = int(lookahead)
        self._chunk_timeout = float(chunk_timeout)
        self._broadcast_timeout = float(broadcast_timeout)
        # In-flight results abandoned by early-stopped runs; drained
        # before the next context broadcast (see _drain_abandoned).
        self._abandoned: deque = deque()
        self._pool: multiprocessing.pool.Pool | None = None
        self._context_token = 0
        self._installed_token: int | None = None
        # Strong reference to the broadcast context: identity is the
        # re-broadcast test, and holding the object pins its id.
        self._installed_context: Any = None
        self._spawn_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured worker count (0/1 = serial fallback)."""
        return self._workers

    @property
    def parallel(self) -> bool:
        """True when runs are distributed over worker processes."""
        return self._workers > 1

    @property
    def spawned(self) -> bool:
        """True while worker processes are alive."""
        return self._pool is not None

    @property
    def spawn_count(self) -> int:
        """How many times worker processes were (re)spawned.

        A deployment reusing one pool across N maintenance passes keeps
        this at 1; the per-run-fork strategy pays N spawns.  Exposed for
        benchmarks and lifecycle tests.
        """
        return self._spawn_count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker processes down gracefully (idempotent)."""
        pool, self._pool = self._pool, None
        self._installed_token = None
        self._installed_context = None
        # pool.join() waits for any abandoned chunks to finish; their
        # results die with the pool either way.
        self._abandoned.clear()
        if pool is not None:
            pool.close()
            pool.join()

    def terminate(self) -> None:
        """Kill the worker processes without waiting (idempotent).

        Used when the pool is known to be broken (a failed context
        broadcast): a graceful ``close`` would wait on workers that may
        never finish.  The pool object stays usable — the next run
        respawns lazily.
        """
        pool, self._pool = self._pool, None
        self._installed_token = None
        self._installed_context = None
        self._abandoned.clear()
        if pool is not None:
            pool.terminate()
            pool.join()

    def warm_up(self) -> None:
        """Spawn the worker processes now instead of on first use.

        The pool is normally lazy, which is right for batch runs but
        wrong for a serving deployment: there the first maintenance
        pass would pay process start-up *while requests are in flight*.
        Calling ``warm_up`` during service start moves that cost ahead
        of traffic.  No-op for serial pools and when already spawned.
        """
        if self.parallel:
            self._ensure_pool()

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            barrier = multiprocessing.Barrier(self._workers)
            self._pool = multiprocessing.Pool(
                processes=self._workers,
                initializer=_init_worker,
                initargs=(barrier,),
            )
            self._spawn_count += 1
            self._installed_token = None
            self._installed_context = None
        return self._pool

    # ------------------------------------------------------------------
    # Streaming execution
    # ------------------------------------------------------------------
    def imap_chunks(
        self, context: Any, func: Callable[[Any, Any], Any], chunks: Iterable[Any]
    ) -> Iterator[Any]:
        """Apply ``func(context, chunk)`` to every chunk, yielding in order.

        ``chunks`` may be (and for streaming runs should be) a lazy
        generator; at most ``lookahead`` chunks per worker are in flight,
        so memory stays bounded by the look-ahead window rather than the
        task list.  Results come back in submission order regardless of
        completion order.  Stopping the returned iterator early simply
        abandons in-flight chunks (their results are dropped); the pool
        stays usable for the next run.

        ``func`` must be a module-level callable and ``context`` must be
        picklable; the context is broadcast to every worker once per run
        (re-broadcast only when the context object changes), not pickled
        per chunk.
        """
        if not self.parallel:
            for chunk in chunks:
                yield func(context, chunk)
            return
        pool, token = self._broadcast(context)
        chunk_iterator = iter(chunks)
        pending: deque = deque()

        def submit_next() -> bool:
            chunk = next(chunk_iterator, _SENTINEL)
            if chunk is _SENTINEL:
                return False
            pending.append(pool.apply_async(_run_chunk, (token, func, chunk)))
            return True

        try:
            for _ in range(self._workers * self._lookahead):
                if not submit_next():
                    break
            while pending:
                try:
                    result = pending.popleft().get(self._chunk_timeout)
                except multiprocessing.TimeoutError:
                    # The worker for this chunk most likely died (Pool
                    # drops such tasks silently); the pool is no longer
                    # trustworthy.  The other pending results die with
                    # it, so they must not reach the abandoned queue.
                    pending.clear()
                    self.terminate()
                    raise RuntimeError(
                        f"worker-pool chunk produced no result within "
                        f"{self._chunk_timeout:.0f}s; a worker may have died"
                    ) from None
                submit_next()
                yield result
        finally:
            # An early-stopped run (closed iterator, max_problems cut)
            # leaves submitted chunks in flight; remember them so the
            # next broadcast can drain instead of hitting its barrier
            # while workers are still busy on them.
            self._abandoned.extend(pending)
            pending.clear()

    def _broadcast(self, context: Any) -> tuple[multiprocessing.pool.Pool, int]:
        """Install ``context`` on every worker; returns (pool, token).

        Re-uses the previous broadcast when the same context object is
        run again (the common case: one engine, many runs).  Identity —
        not equality — is the test, so a mutated-and-resubmitted context
        must be a new object; the callers here always rebuild their
        context tuples per run state, making identity exact.

        Before a real (re)broadcast, chunks abandoned by an
        early-stopped run are drained: a worker may be busy on one for
        up to the chunk timeout, and a worker not at the rendezvous
        barrier within the (much shorter) broadcast timeout would break
        the barrier and kill the pool.  The returned pool may therefore
        differ from the one before the call (drain of a dead worker
        terminates and respawns).
        """
        pool = self._ensure_pool()
        if self._installed_token is not None and self._installed_context is context:
            return pool, self._installed_token
        if not self._drain_abandoned():
            # A worker presumably died on an abandoned chunk; the drain
            # already terminated the pool, so respawn before installing.
            pool = self._ensure_pool()
        self._context_token += 1
        token = self._context_token
        installs = [
            pool.apply_async(_install_context, (token, context, self._broadcast_timeout))
            for _ in range(self._workers)
        ]
        try:
            # Slightly longer than the worker-side barrier timeout so a
            # broken barrier reports its own error before we give up.
            for install in installs:
                install.get(self._broadcast_timeout + 10.0)
        except Exception as exc:
            # A worker died or the rendezvous broke: the pool can no
            # longer be trusted (replacement workers hold no barrier
            # slot), so kill it rather than leave callers to hang.
            self.terminate()
            raise RuntimeError(f"worker-pool context broadcast failed: {exc}") from exc
        self._installed_token = token
        self._installed_context = context
        return pool, token

    def _drain_abandoned(self) -> bool:
        """Await chunks abandoned by early-stopped runs.

        Returns True when every abandoned chunk completed (their
        results are dropped; a chunk that *failed* is fine — nobody
        reads it).  Returns False when a chunk never completed within
        the chunk timeout — the tell-tale of a dead worker — in which
        case the pool has been terminated and must be respawned.

        Each chunk gets the full per-chunk timeout (the same contract a
        live run grants it): a healthy pool draining several abandoned
        near-timeout chunks must not be terminated just because their
        *sum* exceeds one timeout.  Chunks complete roughly in
        submission order, so by the time a later ``get`` starts its
        clock the earlier ones have already finished — the worst case
        stays near one chunk-time per backlog wave, not per chunk.
        """
        while self._abandoned:
            result = self._abandoned.popleft()
            try:
                result.get(self._chunk_timeout)
            except multiprocessing.TimeoutError:
                self.terminate()
                return False
            except Exception:
                pass
        return True


#: Unique end-of-iterator marker for :meth:`WorkerPool.imap_chunks`.
_SENTINEL = object()
