"""Supervised persistent worker pool: the fault-tolerant service layer.

PR 3 made the pool persistent (one ``multiprocessing`` pool shared by
batch pre-processing and incremental maintenance); this revision makes
it **supervised**.  The original implementation delegated process
management to ``multiprocessing.Pool``, which hides worker death — a
killed worker silently loses its task, the parent only notices when the
chunk timeout expires (300+ seconds later), and the whole run aborts.
For a serving deployment whose maintenance passes ride on this pool,
one OOM-killed worker stalling and then aborting a maintenance run is a
reliability hole that multiplies by N once serving is sharded.

:class:`WorkerPool` therefore owns its workers directly:

* each worker is a ``multiprocessing.Process`` with a private task
  queue (parent enqueues without blocking) and a private result pipe
  (one worker's death cannot corrupt another's result stream);
* the parent waits on every result pipe **and every process sentinel**
  at once (:func:`multiprocessing.connection.wait`), so a dead worker
  is detected the moment the OS reaps it — not when a timeout expires;
* a dead (or hung — chunk older than ``chunk_timeout``) worker is
  **respawned**: the replacement receives the current run context and
  the lost chunks are re-dispatched, and because the parent already
  merges results in submission order, the output stream — and any
  store built from it — is byte-identical to a no-fault run;
* after ``max_respawns`` respawns the pool **degrades to serial**:
  remaining and future chunks run in the parent process (slower, never
  wrong), and :attr:`degraded` reports the state for health endpoints.

Per-run context broadcast works as before from the caller's view —
``imap_chunks(context, func, chunks)`` ships the context to every
worker once per run, not per chunk — but needs no rendezvous barrier:
each worker's task queue is FIFO, so a context install enqueued before
a chunk is always installed before that chunk runs.  With ``workers <=
1`` the pool degrades to an in-process serial loop and no processes are
ever spawned.

Fault injection: the parent consults the
:mod:`repro.reliability.faults` registry at chunk dispatch
(``worker.crash`` — the receiving worker hard-exits instead of
computing) and at context broadcast (``worker.broadcast_stall`` — the
worker sleeps before installing).  Evaluating rules parent-side keeps
their counters in one process, so "crash exactly twice" means exactly
twice even across respawns.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.reliability import faults

#: Retained for API compatibility: the queue-per-worker design has no
#: rendezvous barrier left to time out.  (A worker that stalls while
#: unpickling a context simply delays its own chunks, which the hung
#: -worker supervision below then covers.)
BROADCAST_TIMEOUT_SECONDS = 120.0

#: Default ceiling on one chunk's solve time.  A worker whose current
#: chunk is older than this is presumed hung: it is killed, respawned
#: and its chunks re-dispatched (counting toward ``max_respawns``),
#: instead of the whole run aborting as before.
CHUNK_TIMEOUT_SECONDS = 3600.0

#: Default worker respawns tolerated before degrading to serial.
DEFAULT_MAX_RESPAWNS = 3

#: Exit code workers use for the ``worker.crash`` failpoint.
CRASH_EXIT_CODE = 173

#: Seconds close() waits for workers to finish gracefully before
#: killing them (abandoned chunks' results die with the pool anyway).
_CLOSE_GRACE_SECONDS = 5.0

#: Safety poll while waiting with no armed chunk deadline.
_IDLE_WAIT_SECONDS = 0.5


def _transportable_error(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, else a faithful stand-in."""
    try:
        pickle.dumps(exc)
    except Exception:
        return RuntimeError(f"worker task failed: {exc!r}")
    return exc


def _worker_main(tasks, result_writer) -> None:
    """Worker process loop: install contexts, run chunks, send results."""
    token = None
    context = None
    while True:
        try:
            message = tasks.get()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            result_writer.close()
            return
        if kind == "context":
            _, token, context, stall_seconds = message
            if stall_seconds:
                time.sleep(stall_seconds)
            try:
                result_writer.send(("ready", token))
            except (BrokenPipeError, OSError):
                return
            continue
        _, task_id, task_token, func, chunk, directive = message
        if directive == "crash":
            # The worker.crash failpoint: die the hard way, mid-stream,
            # exactly like an OOM kill would.
            os._exit(CRASH_EXIT_CODE)
        try:
            if task_token != token:
                raise RuntimeError(
                    f"stale worker-pool task: expected context {task_token}"
                )
            result = func(context, chunk)
        except BaseException as exc:  # noqa: BLE001 - ferried to the parent
            payload = ("error", task_id, _transportable_error(exc))
        else:
            payload = ("result", task_id, result)
        try:
            result_writer.send(payload)
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Task:
    """Parent-side record of one dispatched chunk."""

    chunk: Any
    wanted: bool = True  # False once the run abandoned it (early stop)


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("process", "tasks", "reader", "inflight", "head_started", "token")

    def __init__(self, process, tasks, reader):
        self.process = process
        self.tasks = tasks
        self.reader = reader
        #: Task ids dispatched to this worker, oldest (running) first.
        self.inflight: deque[int] = deque()
        #: When the head task started (dispatch, or previous result).
        self.head_started: float | None = None
        #: Context token last enqueued to this worker.
        self.token: int | None = None

    def discard(self, task_id: int) -> None:
        """Remove one task from the in-flight deque, advancing the clock."""
        try:
            self.inflight.remove(task_id)
        except ValueError:
            return
        self.head_started = time.monotonic() if self.inflight else None


class WorkerPool:
    """A reusable, supervised process pool with per-run context broadcast.

    Parameters
    ----------
    workers:
        Number of worker processes.  0 or 1 selects the serial fallback:
        chunks run in the calling process and no pool is ever spawned.
    lookahead:
        Maximum in-flight chunks per worker while streaming (bounds
        memory for generator-fed runs).
    chunk_timeout:
        Seconds one chunk may run before its worker is presumed hung
        and killed/respawned (see ``CHUNK_TIMEOUT_SECONDS``).
    broadcast_timeout:
        Accepted for API compatibility; the supervised design has no
        broadcast rendezvous to time out.
    max_respawns:
        Worker respawns (deaths or hangs) tolerated over the pool's
        lifetime before it degrades to serial execution.

    The pool is lazy: processes spawn on the first parallel
    :meth:`imap_chunks` call, survive across calls (that is the point),
    and are torn down by :meth:`close` / context-manager exit.  A closed
    pool may be used again — it simply respawns lazily.  A pool that
    exhausted ``max_respawns`` stays :attr:`degraded` (serial, correct,
    reported via health endpoints) for the rest of its lifetime.
    """

    def __init__(
        self,
        workers: int,
        lookahead: int = 2,
        chunk_timeout: float = CHUNK_TIMEOUT_SECONDS,
        broadcast_timeout: float = BROADCAST_TIMEOUT_SECONDS,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if chunk_timeout <= 0:
            raise ValueError(f"chunk_timeout must be positive, got {chunk_timeout}")
        if broadcast_timeout <= 0:
            raise ValueError(f"broadcast_timeout must be positive, got {broadcast_timeout}")
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self._workers = int(workers)
        self._lookahead = int(lookahead)
        self._chunk_timeout = float(chunk_timeout)
        self._broadcast_timeout = float(broadcast_timeout)
        self._max_respawns = int(max_respawns)
        self._slots: dict[int, _Worker] = {}
        self._tasks: dict[int, _Task] = {}
        self._task_counter = 0
        self._context_token = 0
        self._installed_token: int | None = None
        # Strong reference to the broadcast context: identity is the
        # re-broadcast test, and holding the object pins its id.
        self._installed_context: Any = None
        self._spawn_count = 0
        self._respawns = 0
        self._degraded = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured worker count (0/1 = serial fallback)."""
        return self._workers

    @property
    def parallel(self) -> bool:
        """True when runs are distributed over worker processes."""
        return self._workers > 1 and not self._degraded

    @property
    def spawned(self) -> bool:
        """True while worker processes are alive."""
        return bool(self._slots)

    @property
    def spawn_count(self) -> int:
        """How many times the full worker set was (re)spawned.

        A deployment reusing one pool across N maintenance passes keeps
        this at 1; the per-run-fork strategy pays N spawns.  Individual
        worker respawns after a crash count in :attr:`respawn_count`,
        not here.
        """
        return self._spawn_count

    @property
    def respawn_count(self) -> int:
        """Workers respawned after dying or hanging (lifetime total)."""
        return self._respawns

    @property
    def max_respawns(self) -> int:
        """Respawns tolerated before degrading to serial."""
        return self._max_respawns

    @property
    def degraded(self) -> bool:
        """True once respawns were exhausted and the pool runs serially.

        A degraded pool stays correct — chunks run in the parent
        process — but no longer parallel; health endpoints surface the
        state so operators notice the capacity loss.
        """
        return self._degraded

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker processes down gracefully (idempotent).

        Workers get a stop message and ``_CLOSE_GRACE_SECONDS`` to
        finish their current chunk; stragglers (e.g. busy on a chunk
        abandoned by an early-stopped run) are killed — their results
        die with the pool either way.
        """
        slots, self._slots = self._slots, {}
        self._installed_token = None
        self._installed_context = None
        self._tasks.clear()
        for worker in slots.values():
            try:
                worker.tasks.put(("stop",))
            except (ValueError, OSError):
                pass
        deadline = time.monotonic() + _CLOSE_GRACE_SECONDS
        for worker in slots.values():
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
        self._reap(slots)

    def terminate(self) -> None:
        """Kill the worker processes without waiting (idempotent).

        The pool object stays usable — the next run respawns lazily.
        """
        slots, self._slots = self._slots, {}
        self._installed_token = None
        self._installed_context = None
        self._tasks.clear()
        self._reap(slots)

    def warm_up(self) -> None:
        """Spawn the worker processes now instead of on first use.

        The pool is normally lazy, which is right for batch runs but
        wrong for a serving deployment: there the first maintenance
        pass would pay process start-up *while requests are in flight*.
        Calling ``warm_up`` during service start moves that cost ahead
        of traffic.  No-op for serial (and degraded) pools and when
        already spawned.
        """
        if self.parallel:
            self._ensure_workers()

    @staticmethod
    def _reap(slots: dict[int, _Worker]) -> None:
        """Kill and clean up whatever workers remain in ``slots``."""
        for worker in slots.values():
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.reader.close()
            except OSError:
                pass
            worker.tasks.close()
            worker.tasks.cancel_join_thread()

    # ------------------------------------------------------------------
    # Spawning and supervision
    # ------------------------------------------------------------------
    def _spawn_worker(self, slot: int) -> _Worker:
        tasks: multiprocessing.Queue = multiprocessing.Queue()
        reader, writer = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_worker_main,
            args=(tasks, writer),
            name=f"repro-pool-worker-{slot}",
            daemon=True,
        )
        process.start()
        # The parent must drop its copy of the write end, or the reader
        # would never see EOF after the worker dies.
        writer.close()
        worker = _Worker(process, tasks, reader)
        self._slots[slot] = worker
        return worker

    def _ensure_workers(self) -> None:
        if self._slots:
            # Replace workers that died while the pool sat idle between
            # runs (nobody was watching their sentinels).
            for slot, worker in list(self._slots.items()):
                if not worker.process.is_alive():
                    self._retire_worker(slot)
                    self._respawns += 1
                    if self._check_degrade():
                        return
                    self._spawn_worker(slot)
            return
        for slot in range(self._workers):
            self._spawn_worker(slot)
        self._spawn_count += 1
        self._installed_token = None
        self._installed_context = None

    def _retire_worker(self, slot: int) -> _Worker | None:
        """Drop one worker's handle, killing the process if needed."""
        worker = self._slots.pop(slot, None)
        if worker is None:
            return None
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=1.0)
        try:
            worker.reader.close()
        except OSError:
            pass
        worker.tasks.close()
        worker.tasks.cancel_join_thread()
        return worker

    def _check_degrade(self) -> bool:
        """Degrade to serial when respawns are exhausted; True if so."""
        if self._respawns <= self._max_respawns:
            return False
        self._degraded = True
        slots, self._slots = self._slots, {}
        self._installed_token = None
        self._installed_context = None
        self._reap(slots)
        return True

    # ------------------------------------------------------------------
    # Context broadcast
    # ------------------------------------------------------------------
    def _broadcast(self, context: Any) -> int:
        """Enqueue ``context`` on every worker; returns its token.

        Re-uses the previous broadcast when the same context object is
        run again (the common case: one engine, many runs).  Identity —
        not equality — is the test, so a mutated-and-resubmitted
        context must be a new object; the callers here always rebuild
        their context tuples per run state, making identity exact.

        No rendezvous is needed: each worker's task queue is FIFO, so
        the install is processed before any chunk enqueued after it.
        """
        if self._installed_token is not None and self._installed_context is context:
            token = self._installed_token
        else:
            self._context_token += 1
            token = self._context_token
            self._installed_token = token
            self._installed_context = context
        for worker in self._slots.values():
            if worker.token != token:
                self._install_on(worker, token, context, allow_stall=True)
        return token

    def _install_on(
        self, worker: _Worker, token: int, context: Any, allow_stall: bool
    ) -> None:
        stall = 0.0
        if allow_stall:
            rule = faults.FAILPOINTS.trigger(faults.WORKER_BROADCAST_STALL)
            if rule is not None:
                stall = rule.sleep
        worker.tasks.put(("context", token, context, stall))
        worker.token = token

    # ------------------------------------------------------------------
    # Streaming execution
    # ------------------------------------------------------------------
    def imap_chunks(
        self, context: Any, func: Callable[[Any, Any], Any], chunks: Iterable[Any]
    ) -> Iterator[Any]:
        """Apply ``func(context, chunk)`` to every chunk, yielding in order.

        ``chunks`` may be (and for streaming runs should be) a lazy
        generator; at most ``lookahead`` chunks per worker are in
        flight, so memory stays bounded by the look-ahead window rather
        than the task list.  Results come back in submission order
        regardless of completion order, and regardless of worker deaths
        in between — lost chunks are re-dispatched to the respawned
        worker, so the stream is byte-identical to a no-fault run.
        Stopping the returned iterator early simply abandons in-flight
        chunks (their results are dropped); the pool stays usable for
        the next run.

        ``func`` must be a module-level callable and ``context`` must be
        picklable; the context is broadcast to every worker once per run
        (re-broadcast only when the context object changes), not pickled
        per chunk.
        """
        if not self.parallel:
            for chunk in chunks:
                yield func(context, chunk)
            return
        yield from self._imap_parallel(context, func, chunks)

    def _imap_parallel(
        self, context: Any, func: Callable[[Any, Any], Any], chunks: Iterable[Any]
    ) -> Iterator[Any]:
        self._ensure_workers()
        if self._degraded:
            for chunk in chunks:
                yield func(context, chunk)
            return
        token = self._broadcast(context)
        chunk_iterator = iter(chunks)
        pending: deque[int] = deque()  # submission order
        buffered: dict[int, tuple[str, Any]] = {}
        exhausted = False

        def submit_next() -> bool:
            nonlocal exhausted
            if exhausted or self._degraded:
                return False
            chunk = next(chunk_iterator, _SENTINEL)
            if chunk is _SENTINEL:
                exhausted = True
                return False
            self._task_counter += 1
            task_id = self._task_counter
            self._tasks[task_id] = _Task(chunk=chunk)
            pending.append(task_id)
            self._dispatch(task_id, func, token)
            return True

        def handle_message(worker: _Worker, message: tuple) -> None:
            kind = message[0]
            if kind == "ready":
                return
            _, task_id, payload = message
            worker.discard(task_id)
            task = self._tasks.pop(task_id, None)
            if task is not None and task.wanted:
                buffered[task_id] = (kind, payload)
                submit_next()

        def handle_death(slot: int) -> None:
            """Drain, retire and replace one dead/hung worker."""
            worker = self._slots[slot]
            # Results the worker managed to send before dying are real;
            # drain them so completed work is never recomputed.
            while True:
                try:
                    if not worker.reader.poll():
                        break
                    handle_message(worker, worker.reader.recv())
                except (EOFError, OSError):
                    break
            lost = list(worker.inflight)
            self._retire_worker(slot)
            self._respawns += 1
            if self._check_degrade():
                return
            replacement = self._spawn_worker(slot)
            if self._installed_token is not None:
                self._install_on(
                    replacement, self._installed_token, self._installed_context,
                    allow_stall=False,
                )
            for task_id in lost:
                task = self._tasks.get(task_id)
                if task is None:
                    continue
                if task.wanted:
                    # Order-preserving by construction: the parent
                    # yields by submission order, so re-dispatch order
                    # only affects latency, never the output stream.
                    self._dispatch(task_id, func, token, worker=replacement)
                else:
                    self._tasks.pop(task_id, None)

        def pump() -> None:
            """Wait for one event: a result, a death, or a hung deadline."""
            now = time.monotonic()
            deadlines = [
                worker.head_started + self._chunk_timeout - now
                for worker in self._slots.values()
                if worker.inflight and worker.head_started is not None
            ]
            wait_timeout = (
                max(0.0, min(deadlines)) if deadlines else _IDLE_WAIT_SECONDS
            )
            watched: dict[object, tuple[int, _Worker, str]] = {}
            for slot, worker in self._slots.items():
                watched[worker.reader] = (slot, worker, "reader")
                watched[worker.process.sentinel] = (slot, worker, "sentinel")
            ready = multiprocessing.connection.wait(
                list(watched), timeout=wait_timeout
            )
            if not ready:
                self._reap_hung(handle_death)
                return
            dead: set[int] = set()
            for event in ready:
                slot, worker, what = watched[event]
                if slot in dead or self._slots.get(slot) is not worker:
                    continue
                if what == "sentinel":
                    dead.add(slot)
                    handle_death(slot)
                    continue
                try:
                    message = worker.reader.recv()
                except (EOFError, OSError):
                    dead.add(slot)
                    handle_death(slot)
                    continue
                handle_message(worker, message)

        try:
            for _ in range(self._workers * self._lookahead):
                if not submit_next():
                    break
            while pending:
                head = pending[0]
                if head in buffered:
                    pending.popleft()
                    kind, payload = buffered.pop(head)
                    if kind == "error":
                        raise payload
                    yield payload
                    submit_next()
                    continue
                pump()
                if self._degraded:
                    yield from self._finish_serially(
                        context, func, pending, buffered, chunk_iterator
                    )
                    return
        finally:
            # An early-stopped run (closed iterator, max_problems cut)
            # leaves submitted chunks in flight; mark them unwanted so
            # their eventual results are dropped and a dead worker
            # never wastes a respawn re-dispatching them.
            for task_id in pending:
                task = self._tasks.get(task_id)
                if task is not None:
                    task.wanted = False
            buffered.clear()

    def _dispatch(
        self, task_id: int, func: Callable, token: int, worker: _Worker | None = None
    ) -> None:
        """Send one chunk to a worker (least-loaded when not pinned)."""
        if worker is None:
            worker = min(self._slots.values(), key=lambda w: len(w.inflight))
        directive = None
        if faults.FAILPOINTS.fires(faults.WORKER_CRASH):
            directive = "crash"
        chunk = self._tasks[task_id].chunk
        if not worker.inflight:
            worker.head_started = time.monotonic()
        worker.inflight.append(task_id)
        worker.tasks.put(("chunk", task_id, token, func, chunk, directive))

    def _reap_hung(self, handle_death: Callable[[int], None]) -> None:
        """Kill and replace workers whose head chunk exceeded its timeout."""
        now = time.monotonic()
        for slot, worker in list(self._slots.items()):
            if (
                worker.inflight
                and worker.head_started is not None
                and now - worker.head_started > self._chunk_timeout
            ):
                worker.process.kill()
                worker.process.join(timeout=1.0)
                handle_death(slot)
                if self._degraded:
                    return

    def _finish_serially(
        self,
        context: Any,
        func: Callable,
        pending: deque[int],
        buffered: dict[int, tuple[str, Any]],
        chunk_iterator: Iterator[Any],
    ) -> Iterator[Any]:
        """Finish a run in-process after the pool degraded mid-stream.

        Results workers already delivered are kept (never recomputed);
        everything else — dispatched-but-lost and not-yet-dispatched
        chunks alike — runs in the parent, still in submission order,
        so the output stream is identical to a no-fault run.
        """
        while pending:
            task_id = pending.popleft()
            if task_id in buffered:
                kind, payload = buffered.pop(task_id)
                if kind == "error":
                    raise payload
                yield payload
                continue
            task = self._tasks.pop(task_id, None)
            assert task is not None, "pending task without a record"
            yield func(context, task.chunk)
        for chunk in chunk_iterator:
            yield func(context, chunk)


#: Unique end-of-iterator marker for :meth:`WorkerPool.imap_chunks`.
_SENTINEL = object()
