"""Persistence of pre-generated speeches.

The paper's deployment pre-generates thousands of speeches once (8,500
for the flights dataset) and serves them for months.  That only works
if the speech store survives process restarts, so this module provides
a JSON serialisation of :class:`SpeechStore` contents together with the
configuration that produced them.  The format is deliberately plain
(one JSON document) so deployments can inspect and diff it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.model import Fact, Scope, Speech
from repro.system.config import SummarizationConfig
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech

#: Format marker written into every artifact; bump on breaking changes.
FORMAT_VERSION = 1


class PersistenceError(Exception):
    """Raised when a speech-store artifact cannot be read."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_fact(fact: Fact) -> dict[str, Any]:
    return {
        "scope": dict(fact.scope.assignments),
        "value": fact.value,
        "support": fact.support,
    }


def _encode_stored(stored: StoredSpeech) -> dict[str, Any]:
    return {
        "target": stored.query.target,
        "predicates": dict(stored.query.predicate_map),
        "text": stored.text,
        "utility": stored.utility,
        "scaled_utility": stored.scaled_utility,
        "algorithm": stored.algorithm,
        "facts": [_encode_fact(fact) for fact in stored.speech],
    }


def store_to_dict(store: SpeechStore, config: SummarizationConfig | None = None) -> dict[str, Any]:
    """Serialise a speech store (and optionally its configuration) to a dict."""
    payload: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "speeches": [_encode_stored(stored) for stored in store],
    }
    if config is not None:
        payload["config"] = json.loads(config.to_json())
    return payload


def canonical_store_payload(
    store: SpeechStore, config: SummarizationConfig | None = None
) -> bytes:
    """Serialise a speech store to canonical bytes (sorted keys, compact).

    Deterministic: the same store contents — including iteration order,
    which :class:`SpeechStore` preserves by insertion — always produce
    the same bytes, so checkpoints can be checksummed and two recovery
    paths can be compared byte-for-byte (the durability layer's parity
    oracle).
    """
    return json.dumps(
        store_to_dict(store, config), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def store_from_payload(
    payload: bytes | str,
) -> tuple[SpeechStore, SummarizationConfig | None]:
    """Rebuild a store from :func:`canonical_store_payload` bytes."""
    if isinstance(payload, bytes):
        payload = payload.decode("utf-8")
    try:
        decoded = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise PersistenceError("speech store payload is not valid JSON") from exc
    return store_from_dict(decoded)


def save_store(
    store: SpeechStore,
    path: str | Path,
    config: SummarizationConfig | None = None,
) -> None:
    """Write a speech store to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(store_to_dict(store, config), indent=2, sort_keys=True))


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _decode_fact(payload: dict[str, Any]) -> Fact:
    try:
        return Fact(
            scope=Scope(dict(payload["scope"])),
            value=float(payload["value"]),
            support=int(payload.get("support", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed fact entry: {payload!r}") from exc


def _decode_stored(payload: dict[str, Any]) -> StoredSpeech:
    try:
        query = DataQuery.create(payload["target"], dict(payload.get("predicates", {})))
        facts = [_decode_fact(fact) for fact in payload.get("facts", [])]
        return StoredSpeech(
            query=query,
            speech=Speech(facts),
            text=str(payload.get("text", "")),
            utility=float(payload.get("utility", 0.0)),
            scaled_utility=float(payload.get("scaled_utility", 0.0)),
            algorithm=str(payload.get("algorithm", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed speech entry: {payload!r}") from exc


def store_from_dict(payload: dict[str, Any]) -> tuple[SpeechStore, SummarizationConfig | None]:
    """Rebuild a speech store (and its configuration, if present) from a dict."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported speech-store format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    store = SpeechStore()
    for entry in payload.get("speeches", []):
        store.add(_decode_stored(entry))
    config = None
    if "config" in payload:
        config = SummarizationConfig.from_json(json.dumps(payload["config"]))
    return store, config


def load_store(path: str | Path) -> tuple[SpeechStore, SummarizationConfig | None]:
    """Read a speech store from a JSON file written by :func:`save_store`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise PersistenceError(f"speech store file {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"speech store file {path} is not valid JSON") from exc
    return store_from_dict(payload)
