"""Data queries: a target column plus a conjunction of equality predicates.

This is the query class the system supports (Section III): "queries
requesting information on values in a target column for a data subset,
defined by a conjunction of equality predicates".  Query length is the
number of predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.core.model import Scope


@dataclass(frozen=True)
class DataQuery:
    """A supported voice query.

    Attributes
    ----------
    target:
        The target column the user asks about.
    predicates:
        Equality predicates on dimension columns (column -> value).
    """

    target: str
    predicates: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Canonicalize: predicates are always sorted by column, even when
        # the dataclass is constructed directly — key() equality and the
        # store's subset-key probes depend on one canonical order.
        object.__setattr__(
            self,
            "predicates",
            tuple(sorted(self.predicates, key=lambda item: item[0])),
        )

    @staticmethod
    def create(target: str, predicates: Mapping[str, Any] | None = None) -> "DataQuery":
        """Build a query from a predicate mapping."""
        return DataQuery(target=target, predicates=tuple((predicates or {}).items()))

    @property
    def predicate_map(self) -> Mapping[str, Any]:
        """Predicates as a read-only mapping (cached).

        The map is materialized once per query instance: lookups hit it
        in inner loops (``is_refinement_of`` during store matching), so
        rebuilding a dict per call would dominate those paths.  The
        mapping proxy keeps the cache immutable to callers; it lives
        outside the frozen dataclass fields and does not affect
        equality, hashing or pickling (see ``__getstate__``).
        """
        cached = self.__dict__.get("_predicate_map")
        if cached is None:
            cached = MappingProxyType(dict(self.predicates))
            object.__setattr__(self, "_predicate_map", cached)
        return cached

    def __getstate__(self) -> dict[str, Any]:
        # The cached mapping proxy is not picklable (and is rebuilt on
        # demand), so only the dataclass fields travel.
        return {"target": self.target, "predicates": self.predicates}

    def __setstate__(self, state: dict[str, Any]) -> None:
        object.__setattr__(self, "target", state["target"])
        object.__setattr__(self, "predicates", state["predicates"])

    @property
    def length(self) -> int:
        """Query length = number of equality predicates."""
        return len(self.predicates)

    def scope(self) -> Scope:
        """The data-subset scope defined by the query's predicates."""
        return Scope(self.predicate_map)

    def key(self) -> tuple:
        """Canonical lookup key: (target, sorted predicate items)."""
        return (self.target, self.predicates)

    def is_refinement_of(self, other: "DataQuery") -> bool:
        """True when ``other``'s predicates are a subset of this query's.

        Used by the run-time matcher: a stored speech for predicates S
        can answer a query Q when S ⊆ Q (the stored subset contains the
        queried one) and the targets agree.
        """
        if self.target != other.target:
            return False
        mine = self.predicate_map
        return all(mine.get(col) == val for col, val in other.predicates)

    def describe(self) -> str:
        """Readable description, e.g. "delay for season=Winter, region=East"."""
        if not self.predicates:
            return f"{self.target} overall"
        restrictions = ", ".join(f"{col}={val}" for col, val in self.predicates)
        return f"{self.target} for {restrictions}"
