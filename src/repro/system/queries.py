"""Data queries: a target column plus a conjunction of equality predicates.

This is the query class the system supports (Section III): "queries
requesting information on values in a target column for a data subset,
defined by a conjunction of equality predicates".  Query length is the
number of predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.model import Scope


@dataclass(frozen=True)
class DataQuery:
    """A supported voice query.

    Attributes
    ----------
    target:
        The target column the user asks about.
    predicates:
        Equality predicates on dimension columns (column -> value).
    """

    target: str
    predicates: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @staticmethod
    def create(target: str, predicates: Mapping[str, Any] | None = None) -> "DataQuery":
        """Build a query from a predicate mapping."""
        items = tuple(sorted((predicates or {}).items()))
        return DataQuery(target=target, predicates=items)

    @property
    def predicate_map(self) -> dict[str, Any]:
        """Predicates as a dict."""
        return dict(self.predicates)

    @property
    def length(self) -> int:
        """Query length = number of equality predicates."""
        return len(self.predicates)

    def scope(self) -> Scope:
        """The data-subset scope defined by the query's predicates."""
        return Scope(self.predicate_map)

    def key(self) -> tuple:
        """Canonical lookup key: (target, sorted predicate items)."""
        return (self.target, self.predicates)

    def is_refinement_of(self, other: "DataQuery") -> bool:
        """True when ``other``'s predicates are a subset of this query's.

        Used by the run-time matcher: a stored speech for predicates S
        can answer a query Q when S ⊆ Q (the stored subset contains the
        queried one) and the targets agree.
        """
        if self.target != other.target:
            return False
        mine = self.predicate_map
        return all(mine.get(col) == val for col, val in other.predicates)

    def describe(self) -> str:
        """Readable description, e.g. "delay for season=Winter, region=East"."""
        if not self.predicates:
            return f"{self.target} overall"
        restrictions = ", ".join(f"{col}={val}" for col, val in self.predicates)
        return f"{self.target} for {restrictions}"
