"""Configuration file for the pre-processing stage (Figure 2).

The configuration references a table, names the dimension columns on
which predicates may be placed and the target columns users may ask
about, and bounds the query length considered during pre-processing.
It also carries the speech parameters used by the summarizer (facts per
speech, extra dimensions per fact) matching the defaults of the paper's
evaluation (three facts per speech, facts restricting up to two
dimension columns, queries with up to two predicates).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence


@dataclass(frozen=True)
class SummarizationConfig:
    """Configuration of the problem generator and speech summarizer.

    Attributes
    ----------
    table:
        Name of the table to summarize.
    dimensions:
        Columns on which queries (and facts) may place equality predicates.
    targets:
        Numeric columns users may ask about.
    max_query_length:
        Maximal number of predicates per pre-processed query (paper: 2).
    max_facts_per_speech:
        Facts per speech (paper default: 3 — user retention drops after
        three facts).
    max_fact_dimensions:
        Additional equality predicates per fact beyond the query's own
        predicates (paper default: 2).
    min_fact_support:
        Minimal number of rows a fact must cover.
    algorithm:
        Name of the summarization algorithm used during pre-processing
        (paper's deployment uses the greedy approach).
    """

    table: str
    dimensions: tuple[str, ...]
    targets: tuple[str, ...]
    max_query_length: int = 2
    max_facts_per_speech: int = 3
    max_fact_dimensions: int = 2
    min_fact_support: int = 1
    algorithm: str = "G-O"

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ValueError("configuration requires at least one dimension column")
        if not self.targets:
            raise ValueError("configuration requires at least one target column")
        if self.max_query_length < 0:
            raise ValueError("max_query_length must be non-negative")
        if self.max_facts_per_speech < 1:
            raise ValueError("max_facts_per_speech must be at least 1")
        if self.max_fact_dimensions < 0:
            raise ValueError("max_fact_dimensions must be non-negative")
        overlap = set(self.dimensions) & set(self.targets)
        if overlap:
            raise ValueError(f"columns cannot be both dimension and target: {sorted(overlap)}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def create(
        table: str,
        dimensions: Sequence[str],
        targets: Sequence[str],
        **kwargs,
    ) -> "SummarizationConfig":
        """Build a configuration from plain sequences."""
        return SummarizationConfig(
            table=table,
            dimensions=tuple(dimensions),
            targets=tuple(targets),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Persistence (the paper's system reads a configuration file)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the configuration to a JSON string."""
        payload = asdict(self)
        payload["dimensions"] = list(self.dimensions)
        payload["targets"] = list(self.targets)
        return json.dumps(payload, indent=2, sort_keys=True)

    def save(self, path: str | Path) -> None:
        """Write the configuration to a JSON file."""
        Path(path).write_text(self.to_json())

    @staticmethod
    def from_json(text: str) -> "SummarizationConfig":
        """Parse a configuration from a JSON string."""
        payload = json.loads(text)
        payload["dimensions"] = tuple(payload["dimensions"])
        payload["targets"] = tuple(payload["targets"])
        return SummarizationConfig(**payload)

    @staticmethod
    def load(path: str | Path) -> "SummarizationConfig":
        """Read a configuration from a JSON file."""
        return SummarizationConfig.from_json(Path(path).read_text())
