"""Natural-language request parsing (text → query).

The deployed system relies on the Google Assistant framework, trained
with a few samples, to extract a target column and equality predicates
from the voice transcript (Section III).  This module provides the
offline equivalent: a lexicon-based extractor built from the table's
column metadata plus optional synonyms.  Its output contract matches
the original — a target column and a set of equality predicates — and
it additionally detects the request categories the deployment analysis
distinguishes (help, repeat, comparisons, extrema, other).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Sequence

from repro.system.config import SummarizationConfig
from repro.system.queries import DataQuery
from repro.relational.table import Table


class RequestKind(Enum):
    """Coarse categories of an incoming voice request."""

    HELP = "help"
    REPEAT = "repeat"
    QUERY = "query"
    COMPARISON = "comparison"
    EXTREMUM = "extremum"
    OTHER = "other"


@dataclass
class ParsedRequest:
    """Result of parsing one voice request.

    ``query`` is populated for data-access requests; comparisons and
    extrema also carry the extracted query skeleton when possible so the
    analysis can count them among data-access queries.
    ``value_mentions`` lists *every* recognised dimension value (possibly
    several for the same dimension, as in "between East and West") and
    ``mentioned_dimension`` records a dimension referenced by name
    ("which region ..."); both feed the comparison/extremum extension.
    """

    text: str
    kind: RequestKind
    query: DataQuery | None = None
    matched_values: dict[str, Any] = field(default_factory=dict)
    value_mentions: list[tuple[str, Any]] = field(default_factory=list)
    mentioned_dimension: str | None = None
    wants_minimum: bool = False


_HELP_PATTERNS = ("help", "what can i ask", "what can you do", "how do i", "instructions")
_REPEAT_PATTERNS = ("repeat", "say that again", "once more", "come again")
_COMPARISON_PATTERNS = ("compare", "comparison", " versus ", " vs ", "difference between")
_EXTREMUM_PATTERNS = (
    "highest", "lowest", "most ", "least ", "maximum", "minimum", "worst", "best ",
    "which has the", "who has the",
)


class NaturalLanguageParser:
    """Lexicon-based extractor for target columns and equality predicates.

    Parameters
    ----------
    config:
        Summarization configuration (names the dimensions and targets).
    table:
        The data table; its distinct dimension values form the predicate
        lexicon.
    target_synonyms:
        Extra phrases that map to a target column, e.g.
        ``{"cancellation": ["cancellations", "cancelled flights"]}``.
    dimension_synonyms:
        Extra phrases that map a *value* to a (dimension, value) pair,
        e.g. ``{"nyc": ("borough", "Manhattan")}``.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        table: Table,
        target_synonyms: Mapping[str, Sequence[str]] | None = None,
        dimension_synonyms: Mapping[str, tuple[str, Any]] | None = None,
    ):
        self._config = config
        self._target_lexicon = self._build_target_lexicon(config.targets, target_synonyms)
        self._value_lexicon = self._build_value_lexicon(config.dimensions, table)
        for phrase, (dimension, value) in (dimension_synonyms or {}).items():
            self._value_lexicon[phrase.lower()] = (dimension, value)

    # ------------------------------------------------------------------
    # Lexicon construction
    # ------------------------------------------------------------------
    @staticmethod
    def _build_target_lexicon(
        targets: Sequence[str],
        synonyms: Mapping[str, Sequence[str]] | None,
    ) -> dict[str, str]:
        lexicon: dict[str, str] = {}
        for target in targets:
            phrase = target.replace("_", " ").lower()
            lexicon[phrase] = target
            # Individual informative words of the column name also map to it.
            for word in phrase.split():
                if len(word) > 3:
                    lexicon.setdefault(word, target)
        for target, phrases in (synonyms or {}).items():
            for phrase in phrases:
                lexicon[phrase.lower()] = target
        return lexicon

    @staticmethod
    def _build_value_lexicon(
        dimensions: Sequence[str], table: Table
    ) -> dict[str, tuple[str, Any]]:
        lexicon: dict[str, tuple[str, Any]] = {}
        for dimension in dimensions:
            for value in table.column(dimension).distinct_values():
                phrase = str(value).lower()
                # Values shared by several dimensions keep the first
                # dimension (stable order); callers can disambiguate
                # through dimension_synonyms.
                lexicon.setdefault(phrase, (dimension, value))
        return lexicon

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    def parse(self, text: str) -> ParsedRequest:
        """Parse one voice request into a :class:`ParsedRequest`."""
        normalised = f" {text.strip().lower()} "
        if self._matches_any(normalised, _HELP_PATTERNS):
            return ParsedRequest(text=text, kind=RequestKind.HELP)
        if self._matches_any(normalised, _REPEAT_PATTERNS):
            return ParsedRequest(text=text, kind=RequestKind.REPEAT)

        target = self._extract_target(normalised)
        predicates = self._extract_predicates(normalised)
        mentions = self.extract_value_mentions(normalised)
        dimension = self.extract_dimension_mention(normalised)

        if self._matches_any(normalised, _COMPARISON_PATTERNS):
            query = DataQuery.create(target, predicates) if target else None
            return ParsedRequest(
                text=text,
                kind=RequestKind.COMPARISON,
                query=query,
                matched_values=predicates,
                value_mentions=mentions,
                mentioned_dimension=dimension,
            )
        if self._matches_any(normalised, _EXTREMUM_PATTERNS):
            query = DataQuery.create(target, predicates) if target else None
            wants_minimum = self._matches_any(
                normalised, ("lowest", "least ", "minimum", "fewest", "smallest")
            )
            return ParsedRequest(
                text=text,
                kind=RequestKind.EXTREMUM,
                query=query,
                matched_values=predicates,
                value_mentions=mentions,
                mentioned_dimension=dimension,
                wants_minimum=wants_minimum,
            )
        if target is None:
            return ParsedRequest(text=text, kind=RequestKind.OTHER, matched_values=predicates)
        return ParsedRequest(
            text=text,
            kind=RequestKind.QUERY,
            query=DataQuery.create(target, predicates),
            matched_values=predicates,
            value_mentions=mentions,
        )

    # ------------------------------------------------------------------
    # Extraction internals
    # ------------------------------------------------------------------
    @staticmethod
    def _matches_any(text: str, patterns: Sequence[str]) -> bool:
        return any(pattern in text for pattern in patterns)

    def _extract_target(self, text: str) -> str | None:
        """The target column whose longest synonym appears in the text."""
        best: str | None = None
        best_length = 0
        for phrase, target in self._target_lexicon.items():
            if len(phrase) > best_length and self._phrase_in_text(phrase, text):
                best = target
                best_length = len(phrase)
        return best

    def extract_value_mentions(self, text: str) -> list[tuple[str, Any]]:
        """Every recognised dimension value, in text order of first match.

        Unlike :meth:`_extract_predicates`, a dimension may contribute
        several values ("between East and West"); phrases contained in a
        longer matched phrase are still skipped.
        """
        normalised = f" {text.strip().lower()} "
        mentions: list[tuple[str, int]] = []
        matched_phrases: list[str] = []
        for phrase in sorted(self._value_lexicon, key=len, reverse=True):
            match = re.search(r"\b" + re.escape(phrase) + r"\b", normalised)
            if not match:
                continue
            if any(phrase in longer for longer in matched_phrases):
                continue
            matched_phrases.append(phrase)
            mentions.append((phrase, match.start()))
        mentions.sort(key=lambda item: item[1])
        return [self._value_lexicon[phrase] for phrase, _ in mentions]

    def extract_dimension_mention(self, text: str) -> str | None:
        """A dimension column referenced by name in the text, if any."""
        normalised = f" {text.strip().lower()} "
        best: str | None = None
        best_length = 0
        for dimension in self._config.dimensions:
            phrase = dimension.replace("_", " ").lower()
            candidates = {phrase}
            # Also accept the head noun of a multi-word dimension name
            # ("region" for "origin region").
            if " " in phrase:
                candidates.add(phrase.split()[-1])
            for candidate in candidates:
                if len(candidate) > best_length and self._phrase_in_text(candidate, normalised):
                    best = dimension
                    best_length = len(candidate)
        return best

    def _extract_predicates(self, text: str) -> dict[str, Any]:
        """Equality predicates for every dimension value mentioned in the text."""
        predicates: dict[str, Any] = {}
        matched_phrases: list[str] = []
        for phrase in sorted(self._value_lexicon, key=len, reverse=True):
            if not self._phrase_in_text(phrase, text):
                continue
            # Skip phrases fully contained in an already matched longer phrase
            # (e.g. "north" inside "northeast").
            if any(phrase in longer for longer in matched_phrases):
                continue
            dimension, value = self._value_lexicon[phrase]
            if dimension not in predicates:
                predicates[dimension] = value
                matched_phrases.append(phrase)
        return predicates

    @staticmethod
    def _phrase_in_text(phrase: str, text: str) -> bool:
        pattern = r"\b" + re.escape(phrase) + r"\b"
        return re.search(pattern, text) is not None
