"""Natural-language request parsing (text → query).

The deployed system relies on the Google Assistant framework, trained
with a few samples, to extract a target column and equality predicates
from the voice transcript (Section III).  This module provides the
offline equivalent: a lexicon-based extractor built from the table's
column metadata plus optional synonyms.  Its output contract matches
the original — a target column and a set of equality predicates — and
it additionally detects the request categories the deployment analysis
distinguishes (help, repeat, comparisons, extrema, other).

Parsing must stay cheap at serving time — the paper's run-time budget is
"near zero" (Figure 10) and the serving service parses on the event
loop — so the parser token-indexes its lexicons at construction time: a
word token → lexicon phrases map lets :meth:`parse` verify only the
phrases whose leading token actually occurs in the request, instead of
regex-probing the full vocabulary per request.  The index is purely a
candidate filter (every candidate still passes the original
word-boundary check), so parsed output is identical to the full scan;
``token_index=False`` keeps the scan path selectable as the parity
oracle.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Sequence

from repro.system.config import SummarizationConfig
from repro.system.queries import DataQuery
from repro.relational.table import Table


class RequestKind(Enum):
    """Coarse categories of an incoming voice request."""

    HELP = "help"
    REPEAT = "repeat"
    QUERY = "query"
    COMPARISON = "comparison"
    EXTREMUM = "extremum"
    OTHER = "other"


@dataclass
class ParsedRequest:
    """Result of parsing one voice request.

    ``query`` is populated for data-access requests; comparisons and
    extrema also carry the extracted query skeleton when possible so the
    analysis can count them among data-access queries.
    ``value_mentions`` lists *every* recognised dimension value (possibly
    several for the same dimension, as in "between East and West") and
    ``mentioned_dimension`` records a dimension referenced by name
    ("which region ..."); both feed the comparison/extremum extension.
    """

    text: str
    kind: RequestKind
    query: DataQuery | None = None
    matched_values: dict[str, Any] = field(default_factory=dict)
    value_mentions: list[tuple[str, Any]] = field(default_factory=list)
    mentioned_dimension: str | None = None
    wants_minimum: bool = False


#: Word tokens used by the candidate index (mirrors the ``\b`` boundary
#: semantics of the phrase regexes: a phrase can only match when its
#: leading word token occurs in the text).
_WORD_TOKEN = re.compile(r"\w+")

_HELP_PATTERNS = ("help", "what can i ask", "what can you do", "how do i", "instructions")
_REPEAT_PATTERNS = ("repeat", "say that again", "once more", "come again")
_COMPARISON_PATTERNS = ("compare", "comparison", " versus ", " vs ", "difference between")
_EXTREMUM_PATTERNS = (
    "highest", "lowest", "most ", "least ", "maximum", "minimum", "worst", "best ",
    "which has the", "who has the",
)


class NaturalLanguageParser:
    """Lexicon-based extractor for target columns and equality predicates.

    Parameters
    ----------
    config:
        Summarization configuration (names the dimensions and targets).
    table:
        The data table; its distinct dimension values form the predicate
        lexicon.
    target_synonyms:
        Extra phrases that map to a target column, e.g.
        ``{"cancellation": ["cancellations", "cancelled flights"]}``.
    dimension_synonyms:
        Extra phrases that map a *value* to a (dimension, value) pair,
        e.g. ``{"nyc": ("borough", "Manhattan")}``.
    token_index:
        When True (the default), :meth:`parse` only verifies lexicon
        phrases whose leading word token occurs in the request (built
        once here); False keeps the original full-vocabulary scan.
        Both produce identical parses — the scan path is the oracle of
        the parity tests.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        table: Table,
        target_synonyms: Mapping[str, Sequence[str]] | None = None,
        dimension_synonyms: Mapping[str, tuple[str, Any]] | None = None,
        token_index: bool = True,
    ):
        self._config = config
        self._target_lexicon = self._build_target_lexicon(config.targets, target_synonyms)
        self._value_lexicon = self._build_value_lexicon(config.dimensions, table)
        for phrase, (dimension, value) in (dimension_synonyms or {}).items():
            self._value_lexicon[phrase.lower()] = (dimension, value)
        self._token_index_enabled = bool(token_index)
        # Phrase lists in the exact order the scan path visits them:
        # values longest-first (ties by insertion), targets in insertion
        # order.  The token index stores positions into these lists so
        # filtered candidates preserve the scan order — and with it the
        # first-match/containment tie-breaking — exactly.
        self._ranked_value_phrases = sorted(self._value_lexicon, key=len, reverse=True)
        self._value_index, self._unindexed_values = self._index_phrases(
            self._ranked_value_phrases
        )
        self._target_phrases = list(self._target_lexicon)
        self._target_index, self._unindexed_targets = self._index_phrases(
            self._target_phrases
        )
        # Dimension name phrases, precomputed once: (candidate, dimension)
        # pairs in configuration order, full name before head noun.
        self._dimension_phrases: list[tuple[str, str]] = []
        for dimension in config.dimensions:
            phrase = dimension.replace("_", " ").lower()
            self._dimension_phrases.append((phrase, dimension))
            if " " in phrase:
                self._dimension_phrases.append((phrase.split()[-1], dimension))

    # ------------------------------------------------------------------
    # Lexicon construction
    # ------------------------------------------------------------------
    @staticmethod
    def _build_target_lexicon(
        targets: Sequence[str],
        synonyms: Mapping[str, Sequence[str]] | None,
    ) -> dict[str, str]:
        lexicon: dict[str, str] = {}
        for target in targets:
            phrase = target.replace("_", " ").lower()
            lexicon[phrase] = target
            # Individual informative words of the column name also map to it.
            for word in phrase.split():
                if len(word) > 3:
                    lexicon.setdefault(word, target)
        for target, phrases in (synonyms or {}).items():
            for phrase in phrases:
                lexicon[phrase.lower()] = target
        return lexicon

    @staticmethod
    def _build_value_lexicon(
        dimensions: Sequence[str], table: Table
    ) -> dict[str, tuple[str, Any]]:
        lexicon: dict[str, tuple[str, Any]] = {}
        for dimension in dimensions:
            for value in table.column(dimension).distinct_values():
                phrase = str(value).lower()
                # Values shared by several dimensions keep the first
                # dimension (stable order); callers can disambiguate
                # through dimension_synonyms.
                lexicon.setdefault(phrase, (dimension, value))
        return lexicon

    @staticmethod
    def _index_phrases(
        phrases: Sequence[str],
    ) -> tuple[dict[str, list[int]], tuple[int, ...]]:
        """Map leading word token → positions of phrases starting with it.

        Positions index into ``phrases`` (whose order is the scan
        order).  Phrases without any word token cannot be pre-filtered
        by tokens and are returned separately as always-candidates.
        """
        index: dict[str, list[int]] = {}
        unindexed: list[int] = []
        for position, phrase in enumerate(phrases):
            tokens = _WORD_TOKEN.findall(phrase)
            if tokens:
                index.setdefault(tokens[0], []).append(position)
            else:
                unindexed.append(position)
        return index, tuple(unindexed)

    def _candidates(
        self,
        text: str,
        phrases: list[str],
        index: dict[str, list[int]],
        unindexed: tuple[int, ...],
    ) -> list[str]:
        """Phrases that can possibly match ``text``, in scan order.

        A ``\\b``-anchored phrase match implies the phrase's leading
        word token occurs as a token of the text, so filtering by the
        text's token set never drops a true match; sorting the surviving
        positions restores the scan order exactly.
        """
        if not self._token_index_enabled:
            return phrases
        positions = set(unindexed)
        for token in set(_WORD_TOKEN.findall(text)):
            positions.update(index.get(token, ()))
        if len(positions) == len(phrases):
            return phrases
        return [phrases[position] for position in sorted(positions)]

    def _candidate_value_phrases(self, text: str) -> list[str]:
        return self._candidates(
            text, self._ranked_value_phrases, self._value_index, self._unindexed_values
        )

    def _candidate_target_phrases(self, text: str) -> list[str]:
        return self._candidates(
            text, self._target_phrases, self._target_index, self._unindexed_targets
        )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    def parse(self, text: str) -> ParsedRequest:
        """Parse one voice request into a :class:`ParsedRequest`."""
        normalised = f" {text.strip().lower()} "
        if self._matches_any(normalised, _HELP_PATTERNS):
            return ParsedRequest(text=text, kind=RequestKind.HELP)
        if self._matches_any(normalised, _REPEAT_PATTERNS):
            return ParsedRequest(text=text, kind=RequestKind.REPEAT)

        target = self._extract_target(normalised)
        predicates = self._extract_predicates(normalised)
        mentions = self.extract_value_mentions(normalised)
        dimension = self.extract_dimension_mention(normalised)

        if self._matches_any(normalised, _COMPARISON_PATTERNS):
            query = DataQuery.create(target, predicates) if target else None
            return ParsedRequest(
                text=text,
                kind=RequestKind.COMPARISON,
                query=query,
                matched_values=predicates,
                value_mentions=mentions,
                mentioned_dimension=dimension,
            )
        if self._matches_any(normalised, _EXTREMUM_PATTERNS):
            query = DataQuery.create(target, predicates) if target else None
            wants_minimum = self._matches_any(
                normalised, ("lowest", "least ", "minimum", "fewest", "smallest")
            )
            return ParsedRequest(
                text=text,
                kind=RequestKind.EXTREMUM,
                query=query,
                matched_values=predicates,
                value_mentions=mentions,
                mentioned_dimension=dimension,
                wants_minimum=wants_minimum,
            )
        if target is None:
            return ParsedRequest(text=text, kind=RequestKind.OTHER, matched_values=predicates)
        return ParsedRequest(
            text=text,
            kind=RequestKind.QUERY,
            query=DataQuery.create(target, predicates),
            matched_values=predicates,
            value_mentions=mentions,
        )

    # ------------------------------------------------------------------
    # Extraction internals
    # ------------------------------------------------------------------
    @staticmethod
    def _matches_any(text: str, patterns: Sequence[str]) -> bool:
        return any(pattern in text for pattern in patterns)

    def _extract_target(self, text: str) -> str | None:
        """The target column whose longest synonym appears in the text."""
        best: str | None = None
        best_length = 0
        for phrase in self._candidate_target_phrases(text):
            if len(phrase) > best_length and self._phrase_in_text(phrase, text):
                best = self._target_lexicon[phrase]
                best_length = len(phrase)
        return best

    def extract_value_mentions(self, text: str) -> list[tuple[str, Any]]:
        """Every recognised dimension value, in text order of first match.

        Unlike :meth:`_extract_predicates`, a dimension may contribute
        several values ("between East and West"); phrases contained in a
        longer matched phrase are still skipped.
        """
        normalised = f" {text.strip().lower()} "
        mentions: list[tuple[str, int]] = []
        matched_phrases: list[str] = []
        for phrase in self._candidate_value_phrases(normalised):
            match = re.search(r"\b" + re.escape(phrase) + r"\b", normalised)
            if not match:
                continue
            if any(phrase in longer for longer in matched_phrases):
                continue
            matched_phrases.append(phrase)
            mentions.append((phrase, match.start()))
        mentions.sort(key=lambda item: item[1])
        return [self._value_lexicon[phrase] for phrase, _ in mentions]

    def extract_dimension_mention(self, text: str) -> str | None:
        """A dimension column referenced by name in the text, if any.

        Candidate phrases (each dimension's full name plus, for
        multi-word names, its head noun — "region" for "origin region")
        are precomputed in ``__init__``; the longest matching phrase
        wins.
        """
        normalised = f" {text.strip().lower()} "
        best: str | None = None
        best_length = 0
        for candidate, dimension in self._dimension_phrases:
            if len(candidate) > best_length and self._phrase_in_text(candidate, normalised):
                best = dimension
                best_length = len(candidate)
        return best

    def _extract_predicates(self, text: str) -> dict[str, Any]:
        """Equality predicates for every dimension value mentioned in the text."""
        predicates: dict[str, Any] = {}
        matched_phrases: list[str] = []
        for phrase in self._candidate_value_phrases(text):
            if not self._phrase_in_text(phrase, text):
                continue
            # Skip phrases fully contained in an already matched longer phrase
            # (e.g. "north" inside "northeast").
            if any(phrase in longer for longer in matched_phrases):
                continue
            dimension, value = self._value_lexicon[phrase]
            if dimension not in predicates:
                predicates[dimension] = value
                matched_phrases.append(phrase)
        return predicates

    @staticmethod
    def _phrase_in_text(phrase: str, text: str) -> bool:
        pattern = r"\b" + re.escape(phrase) + r"\b"
        return re.search(pattern, text) is not None
