"""Problem generator: one summarization problem per pre-processed query.

Section III: "The Problem Generator creates one query for each
combination of a target column and a subset of equality predicates,
considering all possible combinations of equality predicates up to the
query length.  For each such query, we generate a speech summarizing
values in the target column for the data subset defined by the query
predicates."
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterator

from repro.core.errors import InvalidProblemError
from repro.core.expectation import ExpectationModel
from repro.core.model import SummarizationRelation
from repro.core.priors import ConstantPrior, Prior
from repro.core.problem import SummarizationProblem
from repro.facts.cube import CubeFactGenerator
from repro.facts.generation import FactGenerator
from repro.relational.expressions import conjunction_of_equalities
from repro.relational.operators import select
from repro.relational.table import Table
from repro.system.config import SummarizationConfig
from repro.system.queries import DataQuery


@dataclass
class GeneratedProblem:
    """A query together with its summarization problem instance."""

    query: DataQuery
    problem: SummarizationProblem


class ProblemGenerator:
    """Enumerates pre-processing queries and builds their problems.

    Parameters
    ----------
    config:
        The summarization configuration.
    table:
        The data table referenced by the configuration.
    prior / expectation_model:
        Optional overrides for the problem instances.  By default the
        prior is the average of the target column over the *whole*
        table (the paper uses "the average value in the target column
        as a (constant) prior"), and the expectation model is the
        closest-relevant-value model.
    min_subset_rows:
        Data subsets with fewer rows than this are skipped (no speech is
        pre-generated for them).
    use_shared_cube:
        When True, candidate facts for every query are served from one
        :class:`repro.facts.cube.DataCube` per target built over the
        whole table (single factorize-and-aggregate pass), instead of
        re-aggregating the query's data subset per query.  Both paths
        produce the same fact set; the cube amortises the aggregation
        work across the thousands of overlapping pre-processing queries.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        table: Table,
        prior: Prior | None = None,
        expectation_model: ExpectationModel | None = None,
        min_subset_rows: int = 2,
        use_shared_cube: bool = False,
    ):
        for column in (*config.dimensions, *config.targets):
            if not table.has_column(column):
                raise InvalidProblemError(
                    f"configured column {column!r} missing from table {table.name!r}"
                )
        self._config = config
        self._table = table
        self._prior = prior
        self._expectation_model = expectation_model
        self._min_subset_rows = min_subset_rows
        self._use_shared_cube = use_shared_cube
        self._prior_cache: dict[str, Prior] = {}
        self._cube_cache: dict[str, CubeFactGenerator] = {}

    @property
    def config(self) -> SummarizationConfig:
        """The generator's configuration."""
        return self._config

    def __getstate__(self) -> dict:
        """Drop per-process caches when pickling (e.g. into pool workers).

        The cube and prior caches hold numpy-heavy derived state that
        every worker can rebuild lazily from the table; shipping them
        would dominate the pool start-up payload.
        """
        state = self.__dict__.copy()
        state["_prior_cache"] = {}
        state["_cube_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Query enumeration
    # ------------------------------------------------------------------
    def enumerate_queries(self) -> Iterator[DataQuery]:
        """Yield every (target, predicate-combination) query.

        Predicates range over all dimension-value combinations that
        appear in the data; query lengths range from zero (the overall
        summary) up to ``max_query_length``.
        """
        domains = {
            dim: self._table.column(dim).distinct_values()
            for dim in self._config.dimensions
        }
        for target in self._config.targets:
            yield DataQuery.create(target, {})
            for length in range(1, self._config.max_query_length + 1):
                for dims in combinations(self._config.dimensions, length):
                    for values in product(*(domains[d] for d in dims)):
                        yield DataQuery.create(target, dict(zip(dims, values)))

    def enumerate_query_chunks(self, size: int) -> Iterator[list[DataQuery]]:
        """Stream the enumerated queries as lists of at most ``size``.

        This is the chunked feed for the worker-pool pipeline: chunks
        are built directly from the lazy enumeration, so no full query
        list is ever materialised — at 10^7 queries the peak memory is
        one chunk, not the query space.  Concatenating the chunks
        reproduces :meth:`enumerate_queries` order exactly.
        """
        if size < 1:
            raise ValueError(f"chunk size must be at least 1, got {size}")
        chunk: list[DataQuery] = []
        for query in self.enumerate_queries():
            chunk.append(query)
            if len(chunk) >= size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def count_queries(self) -> int:
        """Number of queries :meth:`enumerate_queries` yields.

        Computed arithmetically from the dimension domain sizes — for
        each target, one empty query plus, per dimension combination up
        to ``max_query_length``, the product of the combined domains —
        instead of exhausting the full enumeration just to count it
        (O(dimensions choose length) work instead of O(queries)).
        Parity with the enumeration is guarded by a test.
        """
        domain_sizes = {
            dim: len(self._table.column(dim).distinct_values())
            for dim in self._config.dimensions
        }
        per_target = 1
        for length in range(1, self._config.max_query_length + 1):
            for dims in combinations(self._config.dimensions, length):
                product_size = 1
                for dim in dims:
                    product_size *= domain_sizes[dim]
                per_target += product_size
        return len(self._config.targets) * per_target

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def build_problem(self, query: DataQuery) -> SummarizationProblem | None:
        """Build the summarization problem answering ``query``.

        Returns None when the query's data subset is too small or when
        no candidate facts can be generated for it.
        """
        predicate = conjunction_of_equalities(query.predicate_map)
        subset = select(self._table, predicate, name=f"{self._table.name}_subset")
        if subset.num_rows < self._min_subset_rows:
            return None

        relation = SummarizationRelation(
            subset, list(self._config.dimensions), query.target
        )
        if self._use_shared_cube:
            generated = self._cube_generator(query.target).generate(
                base_scope=query.predicate_map
            )
        else:
            generator = FactGenerator(
                relation,
                max_extra_dimensions=self._config.max_fact_dimensions,
                min_support=self._config.min_fact_support,
            )
            generated = generator.generate(base_scope=query.predicate_map)
        if not generated.facts:
            return None

        kwargs = {}
        kwargs["prior"] = self._prior if self._prior is not None else self._default_prior(query.target)
        if self._expectation_model is not None:
            kwargs["expectation_model"] = self._expectation_model
        return SummarizationProblem(
            relation=relation,
            candidate_facts=generated.facts,
            max_facts=self._config.max_facts_per_speech,
            label=query.describe(),
            **kwargs,
        )

    def _cube_generator(self, target: str) -> CubeFactGenerator:
        """One shared cube-backed fact generator per target (cached).

        The cube is built over the full table, so facts for any query's
        base scope are served by slicing — the same row sets the
        per-query :class:`FactGenerator` would aggregate, because a
        query's data subset *is* the rows matching its predicates.
        """
        cached = self._cube_cache.get(target)
        if cached is None:
            relation = SummarizationRelation(
                self._table, list(self._config.dimensions), target
            )
            cached = CubeFactGenerator(
                relation,
                max_extra_dimensions=self._config.max_fact_dimensions,
                max_base_dimensions=self._config.max_query_length,
                min_support=self._config.min_fact_support,
            )
            self._cube_cache[target] = cached
        return cached

    def _default_prior(self, target: str) -> Prior:
        """Constant prior: the target's average over the whole table."""
        cached = self._prior_cache.get(target)
        if cached is None:
            summary = self._table.column(target).numeric_summary()
            cached = ConstantPrior(summary["mean"] if summary["count"] else 0.0)
            self._prior_cache[target] = cached
        return cached

    def generate(self) -> Iterator[GeneratedProblem]:
        """Yield (query, problem) pairs for every viable query."""
        for query in self.enumerate_queries():
            problem = self.build_problem(query)
            if problem is not None:
                yield GeneratedProblem(query=query, problem=problem)
