"""End-to-end voice querying system (Figure 2 of the paper).

Pre-processing: a :class:`SummarizationConfig` describes the table, its
dimensions and targets, and the maximal query length.  The
:class:`ProblemGenerator` enumerates one speech summarization problem
per (target, predicate-combination) pair; the :class:`Preprocessor`
solves them with a chosen algorithm and fills the :class:`SpeechStore`.

Run time: the :class:`NaturalLanguageParser` extracts a target column
and equality predicates from the voice transcript, the store returns
the most specific pre-generated speech containing the queried subset,
and the :class:`SpeechRealizer` renders it as text for voice output.
:class:`VoiceQueryEngine` wires all of this together.
"""

from repro.system.config import SummarizationConfig
from repro.system.queries import DataQuery
from repro.system.problem_generator import GeneratedProblem, ProblemGenerator
from repro.system.templates import SpeechRealizer
from repro.system.speech_store import SpeechStore, StoredSpeech
from repro.system.preprocessor import Preprocessor, PreprocessingReport
from repro.system.nlq import NaturalLanguageParser, ParsedRequest
from repro.system.classification import RequestType, classify_request
from repro.system.engine import VoiceQueryEngine, VoiceResponse
from repro.system.deployment import DeploymentSimulator, QueryLogEntry
from repro.system.persistence import load_store, save_store
from repro.system.advanced import ComparisonAnswerer, ExtremumAnswerer
from repro.system.updates import IncrementalMaintainer, MaintenanceReport

__all__ = [
    "SummarizationConfig",
    "DataQuery",
    "ProblemGenerator",
    "GeneratedProblem",
    "SpeechRealizer",
    "SpeechStore",
    "StoredSpeech",
    "Preprocessor",
    "PreprocessingReport",
    "NaturalLanguageParser",
    "ParsedRequest",
    "RequestType",
    "classify_request",
    "VoiceQueryEngine",
    "VoiceResponse",
    "DeploymentSimulator",
    "QueryLogEntry",
    "save_store",
    "load_store",
    "ComparisonAnswerer",
    "ExtremumAnswerer",
    "IncrementalMaintainer",
    "MaintenanceReport",
]
