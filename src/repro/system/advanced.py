"""Extension: comparison and extremum queries.

The deployment analysis (Section VIII-D) shows that the unsupported
data-access queries are mostly *relative comparisons* ("make a
comparison between job satisfaction between men and women") and
*extrema* ("which airline has the highest cancellation rate").  The
paper leaves these for future work; this module adds them on top of the
existing machinery so the engine can answer all three query shapes of
Figure 9(b):

* a :class:`ComparisonAnswerer` contrasts two data subsets on the same
  target column;
* an :class:`ExtremumAnswerer` reports the dimension value with the
  highest (or lowest) average target value, together with the runner-up
  for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.model import Scope, SummarizationRelation
from repro.relational.table import Table
from repro.system.templates import SpeechRealizer


@dataclass(frozen=True)
class SubsetSummary:
    """Average target value (and support) for one compared subset."""

    predicates: tuple[tuple[str, Any], ...]
    average: float
    support: int

    def describe(self) -> str:
        if not self.predicates:
            return "overall"
        return ", ".join(f"{column} {value}" for column, value in self.predicates)


@dataclass
class ComparisonAnswer:
    """Answer to a comparison query."""

    target: str
    first: SubsetSummary
    second: SubsetSummary
    text: str

    @property
    def difference(self) -> float:
        """Signed difference (first minus second)."""
        return self.first.average - self.second.average

    @property
    def ratio(self) -> float | None:
        """Ratio first/second (None when the second average is zero)."""
        if self.second.average == 0:
            return None
        return self.first.average / self.second.average


@dataclass
class ExtremumAnswer:
    """Answer to an extremum query."""

    target: str
    dimension: str
    best_value: Any
    best_average: float
    runner_up_value: Any | None
    runner_up_average: float | None
    maximize: bool
    text: str


class _RelationCache:
    """Lazily built summarization relations per target column."""

    def __init__(self, table: Table, dimensions: tuple[str, ...]):
        self._table = table
        self._dimensions = dimensions
        self._cache: dict[str, SummarizationRelation] = {}

    def get(self, target: str) -> SummarizationRelation:
        relation = self._cache.get(target)
        if relation is None:
            relation = SummarizationRelation(self._table, list(self._dimensions), target)
            self._cache[target] = relation
        return relation


class ComparisonAnswerer:
    """Answers "compare <target> between A and B" questions."""

    def __init__(
        self,
        table: Table,
        dimensions: tuple[str, ...],
        realizer: SpeechRealizer | None = None,
    ):
        self._relations = _RelationCache(table, dimensions)
        self._realizer = realizer or SpeechRealizer()

    def compare(
        self,
        target: str,
        first_predicates: Mapping[str, Any],
        second_predicates: Mapping[str, Any],
    ) -> ComparisonAnswer | None:
        """Compare the target's average between two data subsets.

        Returns None when either subset is empty.
        """
        relation = self._relations.get(target)
        first = self._summarize_subset(relation, first_predicates)
        second = self._summarize_subset(relation, second_predicates)
        if first is None or second is None:
            return None
        text = self._comparison_text(target, first, second)
        return ComparisonAnswer(target=target, first=first, second=second, text=text)

    def _summarize_subset(
        self, relation: SummarizationRelation, predicates: Mapping[str, Any]
    ) -> SubsetSummary | None:
        average, support = relation.average_target(Scope(dict(predicates)))
        if support == 0:
            return None
        return SubsetSummary(
            predicates=tuple(sorted(predicates.items())),
            average=float(average),
            support=support,
        )

    def _comparison_text(
        self, target: str, first: SubsetSummary, second: SubsetSummary
    ) -> str:
        value_a = self._realizer.format_value(target, first.average)
        value_b = self._realizer.format_value(target, second.average)
        subject = self._realizer.subject(target)
        if first.average > second.average:
            relation_word = "higher than"
        elif first.average < second.average:
            relation_word = "lower than"
        else:
            relation_word = "the same as"
        return (
            f"{subject.capitalize()} is {value_a} for {first.describe()}, "
            f"{relation_word} the {value_b} for {second.describe()}."
        )


class ExtremumAnswerer:
    """Answers "which <dimension> has the highest <target>" questions."""

    def __init__(
        self,
        table: Table,
        dimensions: tuple[str, ...],
        realizer: SpeechRealizer | None = None,
        min_support: int = 1,
    ):
        self._relations = _RelationCache(table, dimensions)
        self._dimensions = dimensions
        self._realizer = realizer or SpeechRealizer()
        self._min_support = min_support

    def extremum(
        self,
        target: str,
        dimension: str,
        maximize: bool = True,
        base_predicates: Mapping[str, Any] | None = None,
    ) -> ExtremumAnswer | None:
        """Find the dimension value with the extreme average target value.

        ``base_predicates`` optionally restricts the search to a subset
        (e.g. "which airline has the highest delay *in Winter*").
        Returns None when the dimension is unknown or has no values with
        sufficient support.
        """
        if dimension not in self._dimensions:
            return None
        relation = self._relations.get(target)
        base = dict(base_predicates or {})
        averages: list[tuple[Any, float]] = []
        for value in relation.dimension_domain(dimension):
            assignments = dict(base)
            assignments[dimension] = value
            average, support = relation.average_target(Scope(assignments))
            if support < self._min_support:
                continue
            averages.append((value, float(average)))
        if not averages:
            return None
        averages.sort(key=lambda item: item[1], reverse=maximize)
        best_value, best_average = averages[0]
        runner_up_value, runner_up_average = (averages[1] if len(averages) > 1 else (None, None))
        text = self._extremum_text(
            target, dimension, best_value, best_average, runner_up_value, runner_up_average, maximize
        )
        return ExtremumAnswer(
            target=target,
            dimension=dimension,
            best_value=best_value,
            best_average=best_average,
            runner_up_value=runner_up_value,
            runner_up_average=runner_up_average,
            maximize=maximize,
            text=text,
        )

    def _extremum_text(
        self,
        target: str,
        dimension: str,
        best_value: Any,
        best_average: float,
        runner_up_value: Any | None,
        runner_up_average: float | None,
        maximize: bool,
    ) -> str:
        subject = self._realizer.subject(target)
        value_text = self._realizer.format_value(target, best_average)
        direction = "highest" if maximize else "lowest"
        dimension_label = dimension.replace("_", " ")
        text = (
            f"The {direction} {subject.replace('the ', '')} is {value_text} "
            f"for {dimension_label} {best_value}."
        )
        if runner_up_value is not None and runner_up_average is not None:
            runner_text = self._realizer.format_value(target, runner_up_average)
            text += f" {dimension_label.capitalize()} {runner_up_value} follows with {runner_text}."
        return text
