"""Speech store: pre-generated speeches indexed by query.

At run time the system "maps voice queries to the most related speech
summary, generated during pre-processing" (Section III).  Exact matches
are preferred; otherwise, among all speeches for the queried target
column, the store returns the speech whose data subset is the most
specific one containing the queried subset: predicates S with S ⊆ Q and
|S ∩ Q| maximal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.model import Speech
from repro.system.queries import DataQuery


@dataclass(frozen=True)
class StoredSpeech:
    """A pre-generated speech with its metadata."""

    query: DataQuery
    speech: Speech
    text: str
    utility: float = 0.0
    scaled_utility: float = 0.0
    algorithm: str = ""


@dataclass
class MatchResult:
    """Result of a run-time lookup.

    ``exact`` indicates whether the stored speech answers precisely the
    requested query or a more general containing subset.
    """

    stored: StoredSpeech
    exact: bool
    overlap: int = 0


@dataclass
class SpeechStore:
    """In-memory index of pre-generated speeches."""

    _by_key: dict[tuple, StoredSpeech] = field(default_factory=dict)
    _by_target: dict[str, list[StoredSpeech]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, stored: StoredSpeech) -> None:
        """Add (or replace) the speech for its query."""
        key = stored.query.key()
        previous = self._by_key.get(key)
        self._by_key[key] = stored
        bucket = self._by_target.setdefault(stored.query.target, [])
        if previous is not None:
            bucket[:] = [s for s in bucket if s.query.key() != key]
        bucket.append(stored)

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[StoredSpeech]:
        return iter(self._by_key.values())

    def targets(self) -> list[str]:
        """Target columns with at least one stored speech."""
        return sorted(self._by_target)

    def speeches_for_target(self, target: str) -> list[StoredSpeech]:
        """All stored speeches for one target column."""
        return list(self._by_target.get(target, ()))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def exact_match(self, query: DataQuery) -> StoredSpeech | None:
        """The speech pre-generated for exactly this query, if any."""
        return self._by_key.get(query.key())

    def best_match(self, query: DataQuery) -> MatchResult | None:
        """The most specific stored speech containing the queried subset.

        Returns None when no stored speech references the queried
        target column, or when no stored subset contains the query.
        """
        exact = self.exact_match(query)
        if exact is not None:
            return MatchResult(stored=exact, exact=True, overlap=query.length)

        candidates = self._by_target.get(query.target)
        if not candidates:
            return None
        best: StoredSpeech | None = None
        best_overlap = -1
        for stored in candidates:
            if not query.is_refinement_of(stored.query):
                continue
            overlap = stored.query.length
            if overlap > best_overlap:
                best = stored
                best_overlap = overlap
        if best is None:
            return None
        return MatchResult(stored=best, exact=False, overlap=best_overlap)
