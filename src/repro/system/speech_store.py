"""Speech store: pre-generated speeches indexed by query.

At run time the system "maps voice queries to the most related speech
summary, generated during pre-processing" (Section III).  Exact matches
are preferred; otherwise, among all speeches for the queried target
column, the store returns the speech whose data subset is the most
specific one containing the queried subset: predicates S with S ⊆ Q and
|S ∩ Q| maximal.

Run-time lookups must stay fast no matter how many speeches were
pre-generated (the paper's flights deployment stores 8,500), so the
store maintains an inverted index mapping ``(target, column, value)``
to the ids of speeches restricting that predicate, plus per-target
buckets of speech ids keyed by stored-query length.  ``best_match``
then works only from the query's own predicates instead of scanning
every stored speech: short queries (the common case — the paper bounds
query length at two) probe each predicate subset as an exact key
(store-size independent), and longer queries count hits over the
posting lists of their predicates — a stored speech with L predicates
qualifies exactly when it appears in L of them.

Matching is deterministic: among qualifying speeches the longest
stored query wins, and ties break by insertion order (the speech whose
query was *first* added wins; replacing a speech keeps its original
position).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterator

from repro.core.model import Speech
from repro.system.queries import DataQuery


@dataclass(frozen=True)
class StoredSpeech:
    """A pre-generated speech with its metadata."""

    query: DataQuery
    speech: Speech
    text: str
    utility: float = 0.0
    scaled_utility: float = 0.0
    algorithm: str = ""


@dataclass
class MatchResult:
    """Result of a run-time lookup.

    ``exact`` indicates whether the stored speech answers precisely the
    requested query or a more general containing subset.
    """

    stored: StoredSpeech
    exact: bool
    overlap: int = 0


@dataclass
class SpeechStore:
    """In-memory inverted index of pre-generated speeches.

    Speech ids are assigned on first insertion of a query key and are
    stable across replacements, so posting lists never need rewriting
    and insertion-order tie-breaking survives updates.
    """

    #: key -> stable speech id (first-insertion order).
    _id_of_key: dict[tuple, int] = field(default_factory=dict)
    #: speech id -> current speech for that id's query key.  The only
    #: structure holding speeches: buckets and postings store ids, so a
    #: replacement is a single write here.
    _by_id: dict[int, StoredSpeech] = field(default_factory=dict)
    #: target -> speech ids (insertion order).
    _by_target: dict[str, list[int]] = field(default_factory=dict)
    #: (target, column, value) -> ids of speeches restricting that predicate.
    _postings: dict[tuple, list[int]] = field(default_factory=dict)
    #: (target, stored-query length) -> speech ids of that length.
    _by_target_length: dict[tuple, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, stored: StoredSpeech) -> None:
        """Add (or replace) the speech for its query.

        Replacement is O(1): the new speech takes the old one's id, so
        the buckets, postings and tie-break order are untouched (the
        key's predicates are, by construction, the same).
        """
        key = stored.query.key()
        speech_id = self._id_of_key.get(key)
        if speech_id is not None:
            self._by_id[speech_id] = stored
            return

        speech_id = len(self._by_id)
        target = stored.query.target
        self._id_of_key[key] = speech_id
        self._by_id[speech_id] = stored
        self._by_target.setdefault(target, []).append(speech_id)
        self._by_target_length.setdefault((target, stored.query.length), []).append(
            speech_id
        )
        for column, value in stored.query.predicates:
            self._postings.setdefault((target, column, value), []).append(speech_id)

    def clone(self) -> "SpeechStore":
        """An independent copy sharing the (immutable) stored speeches.

        Mutating the clone — the maintenance scheduler runs
        :meth:`IncrementalMaintainer.maintain` against a clone while the
        original keeps serving — never touches this store: the index
        dicts and id lists are copied, only the frozen
        :class:`StoredSpeech` payloads are shared.  Ids, insertion order
        and therefore all tie-breaking carry over exactly, so a clone
        answers every query identically to its source.
        """
        return SpeechStore(
            _id_of_key=dict(self._id_of_key),
            _by_id=dict(self._by_id),
            _by_target={target: list(ids) for target, ids in self._by_target.items()},
            _postings={key: list(ids) for key, ids in self._postings.items()},
            _by_target_length={
                key: list(ids) for key, ids in self._by_target_length.items()
            },
        )

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[StoredSpeech]:
        # Ids are assigned sequentially on first insertion and updated in
        # place on replacement, so id-map order is first-insertion order.
        return iter(self._by_id.values())

    def targets(self) -> list[str]:
        """Target columns with at least one stored speech."""
        return sorted(self._by_target)

    def speeches_for_target(self, target: str) -> list[StoredSpeech]:
        """All stored speeches for one target column (insertion order)."""
        return [self._by_id[i] for i in self._by_target.get(target, ())]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def exact_match(self, query: DataQuery) -> StoredSpeech | None:
        """The speech pre-generated for exactly this query, if any."""
        speech_id = self._id_of_key.get(query.key())
        return None if speech_id is None else self._by_id[speech_id]

    #: Queries with at most this many predicates match via subset
    #: enumeration (≤ 2^N exact-key probes, store-size independent);
    #: longer queries fall back to the posting-list intersection.
    _SUBSET_ENUMERATION_MAX_LENGTH = 6

    def best_match(self, query: DataQuery) -> MatchResult | None:
        """The most specific stored speech containing the queried subset.

        Returns None when no stored speech references the queried
        target column, or when no stored subset contains the query.
        Among equally specific matches the speech whose query was first
        added wins (deterministic insertion-order tie-break).
        """
        exact = self.exact_match(query)
        if exact is not None:
            return MatchResult(stored=exact, exact=True, overlap=query.length)
        if query.length <= self._SUBSET_ENUMERATION_MAX_LENGTH:
            return self._subset_enumeration_match(query)
        return self._postings_match(query)

    def _subset_enumeration_match(self, query: DataQuery) -> MatchResult | None:
        """Probe every predicate subset of the query as an exact key.

        Voice queries carry few predicates (the paper bounds query
        length at two), so the ≤ 2^|Q| dict probes cost the same no
        matter how many speeches are stored.  Lengths are probed
        longest-first; within a length the smallest speech id (earliest
        first insertion) wins.
        """
        target = query.target
        for length in range(query.length - 1, -1, -1):
            if (target, length) not in self._by_target_length:
                continue
            best_id = -1
            for subset in combinations(query.predicates, length):
                speech_id = self._id_of_key.get((target, subset))
                if speech_id is not None and (best_id < 0 or speech_id < best_id):
                    best_id = speech_id
            if best_id >= 0:
                return MatchResult(
                    stored=self._by_id[best_id], exact=False, overlap=length
                )
        return None

    def _postings_match(self, query: DataQuery) -> MatchResult | None:
        """Intersect the posting lists of the query's own predicates.

        A stored query S (with S.length predicates) satisfies S ⊆ Q
        exactly when it appears in the posting list of S.length of Q's
        predicates; counting hits over only those lists avoids scanning
        speeches that share no predicate with the query.
        """
        target = query.target
        hits: dict[int, int] = {}
        for column, value in query.predicates:
            for speech_id in self._postings.get((target, column, value), ()):
                hits[speech_id] = hits.get(speech_id, 0) + 1

        best_id = -1
        best_length = -1
        for speech_id, count in hits.items():
            length = self._by_id[speech_id].query.length
            if count != length:
                continue
            if length > best_length or (length == best_length and speech_id < best_id):
                best_id = speech_id
                best_length = length

        if best_id < 0:
            # The zero-predicate ("overall") speech contains every query
            # on its target but appears in no posting list.
            overall = self._by_target_length.get((target, 0))
            if not overall:
                return None
            best_id = overall[0]
            best_length = 0
        return MatchResult(stored=self._by_id[best_id], exact=False, overlap=best_length)

    # ------------------------------------------------------------------
    # Reference path
    # ------------------------------------------------------------------
    def linear_best_match(self, query: DataQuery) -> MatchResult | None:
        """Index-free reference lookup: scan every speech for the target.

        Semantically identical to :meth:`best_match` (same result, same
        tie-breaking); kept as the oracle for property tests and as the
        baseline of ``benchmarks/bench_serving.py``.
        """
        exact = self.exact_match(query)
        if exact is not None:
            return MatchResult(stored=exact, exact=True, overlap=query.length)

        candidates = self._by_target.get(query.target)
        if not candidates:
            return None
        best: StoredSpeech | None = None
        best_overlap = -1
        for speech_id in candidates:
            stored = self._by_id[speech_id]
            if not query.is_refinement_of(stored.query):
                continue
            overlap = stored.query.length
            if overlap > best_overlap:
                best = stored
                best_overlap = overlap
        if best is None:
            return None
        return MatchResult(stored=best, exact=False, overlap=best_overlap)
