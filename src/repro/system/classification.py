"""Request classification for deployment analysis (Table III, Figure 9).

The paper classifies logged voice requests into help requests, repeat
requests, supported data-access queries, unsupported data-access
queries, and other requests; data-access queries are further broken
down by number of predicates and by type (retrieval, comparison,
extremum).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from repro.system.config import SummarizationConfig
from repro.system.nlq import ParsedRequest, RequestKind


class RequestType(Enum):
    """Categories used in Table III."""

    HELP = "Help"
    REPEAT = "Repeat"
    SUPPORTED_QUERY = "S-Query"
    UNSUPPORTED_QUERY = "U-Query"
    OTHER = "Other"


class QueryShape(Enum):
    """Data-access query types used in Figure 9(b)."""

    RETRIEVAL = "retrieval"
    COMPARISON = "comparison"
    EXTREMUM = "extremum"


def classify_request(parsed: ParsedRequest, config: SummarizationConfig) -> RequestType:
    """Map a parsed request to its Table III category.

    A data-access query is *supported* when it asks for a configured
    target with equality predicates on configured dimensions; the
    run-time matcher answers queries longer than the pre-processed
    length with the most specific containing subset, so length does not
    make a query unsupported.  Comparisons, extrema and queries over
    unavailable columns are *unsupported* (matching the examples the
    paper lists for its deployment logs).
    """
    if parsed.kind is RequestKind.HELP:
        return RequestType.HELP
    if parsed.kind is RequestKind.REPEAT:
        return RequestType.REPEAT
    if parsed.kind in (RequestKind.COMPARISON, RequestKind.EXTREMUM):
        return RequestType.UNSUPPORTED_QUERY
    if parsed.kind is RequestKind.QUERY and parsed.query is not None:
        query = parsed.query
        if query.target not in config.targets:
            return RequestType.UNSUPPORTED_QUERY
        if any(column not in config.dimensions for column, _ in query.predicates):
            return RequestType.UNSUPPORTED_QUERY
        return RequestType.SUPPORTED_QUERY
    return RequestType.OTHER


def query_shape(parsed: ParsedRequest) -> QueryShape | None:
    """The Figure 9(b) shape of a data-access request (None for non-queries)."""
    if parsed.kind is RequestKind.QUERY:
        return QueryShape.RETRIEVAL
    if parsed.kind is RequestKind.COMPARISON:
        return QueryShape.COMPARISON
    if parsed.kind is RequestKind.EXTREMUM:
        return QueryShape.EXTREMUM
    return None


@dataclass
class RequestAnalysis:
    """Aggregated request statistics for one deployment log.

    ``by_type`` reproduces a Table III column; ``by_predicate_count``
    and ``by_shape`` reproduce Figures 9(a) and 9(b).
    """

    by_type: Counter = field(default_factory=Counter)
    by_predicate_count: Counter = field(default_factory=Counter)
    by_shape: Counter = field(default_factory=Counter)
    total: int = 0

    def as_table_row(self) -> dict[str, int]:
        """Counts in Table III order."""
        return {
            request_type.value: self.by_type.get(request_type, 0)
            for request_type in RequestType
        }


def analyse_requests(
    parsed_requests: Iterable[ParsedRequest],
    config: SummarizationConfig,
) -> RequestAnalysis:
    """Classify a batch of parsed requests (one deployment's log)."""
    analysis = RequestAnalysis()
    for parsed in parsed_requests:
        analysis.total += 1
        request_type = classify_request(parsed, config)
        analysis.by_type[request_type] += 1
        shape = query_shape(parsed)
        if shape is not None:
            analysis.by_shape[shape] += 1
            if parsed.query is not None and shape is QueryShape.RETRIEVAL:
                analysis.by_predicate_count[parsed.query.length] += 1
    return analysis
