"""Batch pre-processing: solve every generated problem and fill the store.

This is the "Speech Summarizer" box of Figure 2.  Pre-processing cost
is the price paid for near-zero run-time latency (Figure 10): the
deployment spends minutes in this loop and afterwards answers queries
by a simple store lookup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algorithms.base import Summarizer
from repro.algorithms.registry import make_summarizer
from repro.system.config import SummarizationConfig
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech
from repro.system.templates import SpeechRealizer


@dataclass
class PreprocessingReport:
    """Summary of one pre-processing run.

    Attributes
    ----------
    speeches_generated:
        Number of speeches stored.
    queries_considered:
        Number of queries enumerated (including skipped ones).
    queries_skipped:
        Queries whose data subset was too small to summarize.
    total_seconds:
        Wall-clock time of the whole batch.
    total_utility / total_scaled_utility:
        Sums over all generated speeches (for averaging in reports).
    per_query_seconds:
        Average pre-processing time per stored speech.
    """

    speeches_generated: int = 0
    queries_considered: int = 0
    queries_skipped: int = 0
    total_seconds: float = 0.0
    total_utility: float = 0.0
    total_scaled_utility: float = 0.0
    algorithm: str = ""
    fact_evaluations: int = 0
    query_labels: list[str] = field(default_factory=list)

    @property
    def per_query_seconds(self) -> float:
        """Average pre-processing time per generated speech."""
        if self.speeches_generated == 0:
            return 0.0
        return self.total_seconds / self.speeches_generated

    @property
    def average_scaled_utility(self) -> float:
        """Average scaled utility over all generated speeches."""
        if self.speeches_generated == 0:
            return 0.0
        return self.total_scaled_utility / self.speeches_generated


class Preprocessor:
    """Runs a summarization algorithm over every pre-processing query.

    Parameters
    ----------
    config:
        The summarization configuration.
    summarizer:
        Algorithm instance; when omitted, ``config.algorithm`` is
        instantiated from the registry.
    realizer:
        Speech realizer used to render stored speech texts.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        summarizer: Summarizer | None = None,
        realizer: SpeechRealizer | None = None,
    ):
        self._config = config
        self._summarizer = summarizer or make_summarizer(config.algorithm)
        self._realizer = realizer or SpeechRealizer()

    @property
    def summarizer(self) -> Summarizer:
        """The algorithm used for pre-processing."""
        return self._summarizer

    def run(
        self,
        generator: ProblemGenerator,
        store: SpeechStore | None = None,
        max_problems: int | None = None,
    ) -> tuple[SpeechStore, PreprocessingReport]:
        """Solve all generated problems and store the resulting speeches.

        ``max_problems`` caps the number of solved problems (useful for
        tests and scaled-down experiments).
        """
        store = store if store is not None else SpeechStore()
        report = PreprocessingReport(algorithm=self._summarizer.name)
        start = time.perf_counter()

        solved = 0
        for query in generator.enumerate_queries():
            report.queries_considered += 1
            if max_problems is not None and solved >= max_problems:
                continue
            problem = generator.build_problem(query)
            if problem is None:
                report.queries_skipped += 1
                continue
            result = self._summarizer.summarize(problem)
            text = self._realizer.realize(query, result.speech)
            store.add(
                StoredSpeech(
                    query=query,
                    speech=result.speech,
                    text=text,
                    utility=result.utility,
                    scaled_utility=result.scaled_utility,
                    algorithm=result.algorithm,
                )
            )
            solved += 1
            report.speeches_generated += 1
            report.total_utility += result.utility
            report.total_scaled_utility += result.scaled_utility
            report.fact_evaluations += result.statistics.fact_evaluations
            report.query_labels.append(query.describe())

        report.total_seconds = time.perf_counter() - start
        return store, report

    @staticmethod
    def lookup_query(store: SpeechStore, query: DataQuery):
        """Convenience wrapper for run-time lookups (store.best_match)."""
        return store.best_match(query)
