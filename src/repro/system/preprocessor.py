"""Batch pre-processing: solve every generated problem and fill the store.

This is the "Speech Summarizer" box of Figure 2.  Pre-processing cost
is the price paid for near-zero run-time latency (Figure 10): the
deployment spends minutes in this loop and afterwards answers queries
by a simple store lookup.

The batch is embarrassingly parallel — each query's problem is built
and solved independently — so :meth:`Preprocessor.run` optionally
chunks the enumerated queries across a ``multiprocessing`` pool
(``workers=N``).  Workers return realized speeches; the parent merges
them back in enumeration order, so the resulting store (and its
persisted JSON) is byte-identical to a serial run regardless of worker
count or chunk scheduling.  Summarizers whose output depends on call
order (``Summarizer.deterministic`` is False) are run serially even
when workers are requested, so the guarantee holds for every
algorithm.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.algorithms.base import Summarizer
from repro.algorithms.registry import make_summarizer
from repro.system.config import SummarizationConfig
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech
from repro.system.templates import SpeechRealizer


@dataclass
class PreprocessingReport:
    """Summary of one pre-processing run.

    Attributes
    ----------
    speeches_generated:
        Number of speeches stored.
    queries_considered:
        Number of queries enumerated (including skipped ones).
    queries_skipped:
        Queries whose data subset was too small to summarize.
    total_seconds:
        Wall-clock time of the whole batch.
    total_utility / total_scaled_utility:
        Sums over all generated speeches (for averaging in reports).
    per_query_seconds:
        Average pre-processing time per stored speech.
    workers:
        Number of pool workers used (0 = serial in-process run).
    """

    speeches_generated: int = 0
    queries_considered: int = 0
    queries_skipped: int = 0
    total_seconds: float = 0.0
    total_utility: float = 0.0
    total_scaled_utility: float = 0.0
    algorithm: str = ""
    fact_evaluations: int = 0
    query_labels: list[str] = field(default_factory=list)
    workers: int = 0

    @property
    def per_query_seconds(self) -> float:
        """Average pre-processing time per generated speech."""
        if self.speeches_generated == 0:
            return 0.0
        return self.total_seconds / self.speeches_generated

    @property
    def average_scaled_utility(self) -> float:
        """Average scaled utility over all generated speeches."""
        if self.speeches_generated == 0:
            return 0.0
        return self.total_scaled_utility / self.speeches_generated


# ----------------------------------------------------------------------
# Pool worker plumbing
# ----------------------------------------------------------------------
#: Per-worker state set by the pool initializer: (generator, summarizer,
#: realizer).  A module global because pool tasks may only reference
#: module-level callables.
_WORKER_STATE: tuple[ProblemGenerator, Summarizer, SpeechRealizer] | None = None


def _init_worker(
    generator: ProblemGenerator, summarizer: Summarizer, realizer: SpeechRealizer
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (generator, summarizer, realizer)


def _solve_query(
    generator: ProblemGenerator,
    summarizer: Summarizer,
    realizer: SpeechRealizer,
    query: DataQuery,
) -> tuple[StoredSpeech, int] | None:
    """Solve one query end to end; None marks a skipped (too small) query.

    Both the serial loop and the pool workers go through this single
    function, so the two execution strategies cannot drift apart.
    """
    problem = generator.build_problem(query)
    if problem is None:
        return None
    result = summarizer.summarize(problem)
    text = realizer.realize(query, result.speech)
    return (
        StoredSpeech(
            query=query,
            speech=result.speech,
            text=text,
            utility=result.utility,
            scaled_utility=result.scaled_utility,
            algorithm=result.algorithm,
        ),
        result.statistics.fact_evaluations,
    )


def _solve_chunk(
    chunk: list[DataQuery],
) -> list[tuple[StoredSpeech, int] | None]:
    """Solve one chunk of queries in a pool worker."""
    assert _WORKER_STATE is not None, "worker pool not initialized"
    generator, summarizer, realizer = _WORKER_STATE
    return [_solve_query(generator, summarizer, realizer, query) for query in chunk]


def _chunked(items: list, size: int) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class Preprocessor:
    """Runs a summarization algorithm over every pre-processing query.

    Parameters
    ----------
    config:
        The summarization configuration.
    summarizer:
        Algorithm instance; when omitted, ``config.algorithm`` is
        instantiated from the registry.
    realizer:
        Speech realizer used to render stored speech texts.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        summarizer: Summarizer | None = None,
        realizer: SpeechRealizer | None = None,
    ):
        self._config = config
        self._summarizer = summarizer or make_summarizer(config.algorithm)
        self._realizer = realizer or SpeechRealizer()

    @property
    def summarizer(self) -> Summarizer:
        """The algorithm used for pre-processing."""
        return self._summarizer

    def run(
        self,
        generator: ProblemGenerator,
        store: SpeechStore | None = None,
        max_problems: int | None = None,
        workers: int = 0,
        chunk_size: int | None = None,
    ) -> tuple[SpeechStore, PreprocessingReport]:
        """Solve all generated problems and store the resulting speeches.

        ``max_problems`` caps the number of solved problems (useful for
        tests and scaled-down experiments).  ``workers`` > 1 distributes
        query chunks across a process pool; the merged store is
        byte-identical to the serial result (``workers`` 0 or 1).
        Summarizers that carry state across problems (``deterministic``
        False, e.g. the RANDOM baseline) cannot be sharded without
        changing their output, so they run serially with a warning.
        ``chunk_size`` overrides the pool task granularity.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        if workers and workers > 1 and not self._summarizer.deterministic:
            warnings.warn(
                f"summarizer {self._summarizer.name!r} carries state across "
                "problems; running serially to keep its output reproducible",
                stacklevel=2,
            )
            workers = 0
        store = store if store is not None else SpeechStore()
        # workers <= 1 takes the serial path; the report records how the
        # run actually executed (0 = serial, per the field docstring).
        effective_workers = int(workers) if workers and workers > 1 else 0
        report = PreprocessingReport(
            algorithm=self._summarizer.name, workers=effective_workers
        )
        start = time.perf_counter()
        if effective_workers:
            outcomes = self._parallel_outcomes(
                generator, effective_workers, chunk_size, max_problems
            )
        else:
            outcomes = self._serial_outcomes(generator, max_problems)
        self._merge(outcomes, store, report, max_problems)
        report.total_seconds = time.perf_counter() - start
        return store, report

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _serial_outcomes(
        self,
        generator: ProblemGenerator,
        max_problems: int | None,
    ) -> Iterator[tuple[StoredSpeech, int] | None]:
        """Per-query outcomes, solved lazily in the calling process.

        Queries beyond the ``max_problems`` cap are never built (the
        merge step stops storing once the cap is hit, so yielding None
        for them keeps the accounting identical at zero cost).
        """
        solved = 0
        for query in generator.enumerate_queries():
            if max_problems is not None and solved >= max_problems:
                yield None
                continue
            outcome = _solve_query(generator, self._summarizer, self._realizer, query)
            if outcome is not None:
                solved += 1
            yield outcome

    def _parallel_outcomes(
        self,
        generator: ProblemGenerator,
        workers: int,
        chunk_size: int | None,
        max_problems: int | None,
    ) -> Iterator[tuple[StoredSpeech, int] | None]:
        """Per-query outcomes computed by a worker pool, in query order.

        Chunks are submitted with bounded look-ahead (at most two per
        worker in flight) and collected first-in-first-out, so
        flattening the results reproduces the exact enumeration order
        no matter which worker solved which chunk — and once
        ``max_problems`` speeches have been produced no further chunks
        are dispatched (the pool is torn down; chunks already in flight
        may finish unobserved).  The remaining queries are reported as
        bare None outcomes, which the merge step only counts, mirroring
        the serial path's cap behavior.
        """
        queries = list(generator.enumerate_queries())
        if not queries:
            return
        if chunk_size is None:
            # ~4 tasks per worker balances scheduling slack against
            # per-task pickling overhead.
            chunk_size = max(1, -(-len(queries) // (workers * 4)))
        chunk_iterator = _chunked(queries, chunk_size)
        pending: deque = deque()
        yielded = 0
        solved = 0
        with multiprocessing.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(generator, self._summarizer, self._realizer),
        ) as pool:

            def submit_next() -> None:
                chunk = next(chunk_iterator, None)
                if chunk is not None:
                    pending.append(pool.apply_async(_solve_chunk, (chunk,)))

            for _ in range(workers * 2):
                submit_next()
            while pending:
                chunk_result = pending.popleft().get()
                for outcome in chunk_result:
                    yield outcome
                    yielded += 1
                    if outcome is not None:
                        solved += 1
                if max_problems is not None and solved >= max_problems:
                    break
                submit_next()
        for _ in range(len(queries) - yielded):
            yield None

    def _merge(
        self,
        outcomes: Iterable[tuple[StoredSpeech, int] | None],
        store: SpeechStore,
        report: PreprocessingReport,
        max_problems: int | None,
    ) -> None:
        """Fold per-query outcomes (in enumeration order) into the store."""
        solved = 0
        for outcome in outcomes:
            report.queries_considered += 1
            if max_problems is not None and solved >= max_problems:
                continue
            if outcome is None:
                report.queries_skipped += 1
                continue
            stored, fact_evaluations = outcome
            store.add(stored)
            solved += 1
            report.speeches_generated += 1
            report.total_utility += stored.utility
            report.total_scaled_utility += stored.scaled_utility
            report.fact_evaluations += fact_evaluations
            report.query_labels.append(stored.query.describe())

    @staticmethod
    def lookup_query(store: SpeechStore, query: DataQuery):
        """Convenience wrapper for run-time lookups (store.best_match)."""
        return store.best_match(query)
