"""Batch pre-processing: solve every generated problem and fill the store.

This is the "Speech Summarizer" box of Figure 2.  Pre-processing cost
is the price paid for near-zero run-time latency (Figure 10): the
deployment spends minutes in this loop and afterwards answers queries
by a simple store lookup.

The batch is embarrassingly parallel — each query's problem is built
and solved independently — so :meth:`Preprocessor.run` optionally
streams chunks of the enumerated queries across a
:class:`repro.system.worker_pool.WorkerPool` (``workers=N``, or a
caller-owned ``pool=`` reused across runs).  Queries are fed from
:meth:`ProblemGenerator.enumerate_query_chunks`, so the full query list
is never materialised; workers return realized speeches and the parent
merges them back in enumeration order, so the resulting store (and its
persisted JSON) is byte-identical to a serial run regardless of worker
count, chunk scheduling or pool lifetime.  Summarizers whose output
depends on call order (``Summarizer.deterministic`` is False) are run
serially even when workers are requested, so the guarantee holds for
every algorithm.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.algorithms.base import Summarizer
from repro.algorithms.registry import make_summarizer
from repro.system.config import SummarizationConfig
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech
from repro.system.templates import SpeechRealizer
from repro.system.worker_pool import WorkerPool


@dataclass
class PreprocessingReport:
    """Summary of one pre-processing run.

    Attributes
    ----------
    speeches_generated:
        Number of speeches stored.
    queries_considered:
        Number of queries enumerated (including skipped ones).
    queries_skipped:
        Queries whose data subset was too small to summarize.
    total_seconds:
        Wall-clock time of the whole batch.
    total_utility / total_scaled_utility:
        Sums over all generated speeches (for averaging in reports).
    per_query_seconds:
        Average pre-processing time per stored speech.
    workers:
        Number of pool workers used (0 = serial in-process run).
    """

    speeches_generated: int = 0
    queries_considered: int = 0
    queries_skipped: int = 0
    total_seconds: float = 0.0
    total_utility: float = 0.0
    total_scaled_utility: float = 0.0
    algorithm: str = ""
    fact_evaluations: int = 0
    query_labels: list[str] = field(default_factory=list)
    workers: int = 0

    @property
    def per_query_seconds(self) -> float:
        """Average pre-processing time per generated speech."""
        if self.speeches_generated == 0:
            return 0.0
        return self.total_seconds / self.speeches_generated

    @property
    def average_scaled_utility(self) -> float:
        """Average scaled utility over all generated speeches."""
        if self.speeches_generated == 0:
            return 0.0
        return self.total_scaled_utility / self.speeches_generated


# ----------------------------------------------------------------------
# Pool worker plumbing
# ----------------------------------------------------------------------
def _solve_query(
    generator: ProblemGenerator,
    summarizer: Summarizer,
    realizer: SpeechRealizer,
    query: DataQuery,
) -> tuple[StoredSpeech, int] | None:
    """Solve one query end to end; None marks a skipped (too small) query.

    Both the serial loop and the pool workers go through this single
    function, so the two execution strategies cannot drift apart.
    """
    problem = generator.build_problem(query)
    if problem is None:
        return None
    result = summarizer.summarize(problem)
    text = realizer.realize(query, result.speech)
    return (
        StoredSpeech(
            query=query,
            speech=result.speech,
            text=text,
            utility=result.utility,
            scaled_utility=result.scaled_utility,
            algorithm=result.algorithm,
        ),
        result.statistics.fact_evaluations,
    )


def solve_query_chunk(
    context: tuple[ProblemGenerator, Summarizer, SpeechRealizer],
    chunk: list[DataQuery],
) -> list[tuple[StoredSpeech, int] | None]:
    """Solve one chunk of queries under a broadcast worker-pool context.

    The context is the (generator, summarizer, realizer) triple shipped
    once per run by :class:`repro.system.worker_pool.WorkerPool`; the
    incremental maintainer shares this entry point, so every execution
    strategy funnels through :func:`_solve_query`.
    """
    generator, summarizer, realizer = context
    return [_solve_query(generator, summarizer, realizer, query) for query in chunk]


def resolve_parallelism(
    summarizer: Summarizer, workers: int, pool: WorkerPool | None, verb: str = "running"
) -> tuple[int, WorkerPool | None]:
    """Effective worker count for one batch, honoring the serial fallback.

    A caller-owned pool's worker count wins over ``workers``.
    Summarizers that carry state across problems (``deterministic``
    False, e.g. the RANDOM baseline) cannot be sharded without changing
    their output, so they demote the run to serial with a warning.
    Returns ``(effective_workers, pool)`` where 0 means serial; shared
    by batch pre-processing and incremental maintenance so the policy
    cannot drift between them.
    """
    requested = pool.workers if pool is not None else int(workers or 0)
    if requested > 1 and not summarizer.deterministic:
        warnings.warn(
            f"summarizer {summarizer.name!r} carries state across "
            f"problems; {verb} serially to keep its output reproducible",
            stacklevel=3,
        )
        return 0, None
    return (requested if requested > 1 else 0), pool


def default_chunk_size(total_items: int, workers: int) -> int:
    """~4 tasks per worker: scheduling slack vs. per-task pickling overhead."""
    return max(1, -(-total_items // (workers * 4)))


def stream_solved_chunks(
    context: tuple[ProblemGenerator, Summarizer, SpeechRealizer],
    chunks: Iterable[list[DataQuery]],
    workers: int,
    pool: WorkerPool | None,
) -> Iterator[list[tuple[StoredSpeech, int] | None]]:
    """Yield solved chunk results in order, managing the pool lifetime.

    Uses the caller-owned ``pool`` when given (it stays open for the
    next run); otherwise spawns a per-run :class:`WorkerPool` that is
    closed when the stream is exhausted or closed early.
    """
    run_pool = pool if pool is not None else WorkerPool(workers)
    try:
        yield from run_pool.imap_chunks(context, solve_query_chunk, chunks)
    finally:
        if pool is None:
            run_pool.close()


class Preprocessor:
    """Runs a summarization algorithm over every pre-processing query.

    Parameters
    ----------
    config:
        The summarization configuration.
    summarizer:
        Algorithm instance; when omitted, ``config.algorithm`` is
        instantiated from the registry.
    realizer:
        Speech realizer used to render stored speech texts.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        summarizer: Summarizer | None = None,
        realizer: SpeechRealizer | None = None,
    ):
        self._config = config
        self._summarizer = summarizer or make_summarizer(config.algorithm)
        self._realizer = realizer or SpeechRealizer()

    @property
    def summarizer(self) -> Summarizer:
        """The algorithm used for pre-processing."""
        return self._summarizer

    def run(
        self,
        generator: ProblemGenerator,
        store: SpeechStore | None = None,
        max_problems: int | None = None,
        workers: int = 0,
        chunk_size: int | None = None,
        pool: WorkerPool | None = None,
    ) -> tuple[SpeechStore, PreprocessingReport]:
        """Solve all generated problems and store the resulting speeches.

        ``max_problems`` caps the number of solved problems (useful for
        tests and scaled-down experiments).  ``workers`` > 1 streams
        query chunks across a per-run :class:`WorkerPool`; passing
        ``pool`` instead reuses a caller-owned pool (its worker count
        wins), amortising process start-up across runs.  Either way the
        merged store is byte-identical to the serial result (``workers``
        0 or 1).  Summarizers that carry state across problems
        (``deterministic`` False, e.g. the RANDOM baseline) cannot be
        sharded without changing their output, so they run serially
        with a warning.  ``chunk_size`` overrides the task granularity.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        # workers <= 1 takes the serial path; the report records how the
        # run actually executed (0 = serial, per the field docstring).
        effective_workers, pool = resolve_parallelism(self._summarizer, workers, pool)
        store = store if store is not None else SpeechStore()
        report = PreprocessingReport(
            algorithm=self._summarizer.name, workers=effective_workers
        )
        start = time.perf_counter()
        if effective_workers:
            outcomes = self._parallel_outcomes(
                generator, effective_workers, pool, chunk_size, max_problems
            )
        else:
            outcomes = self._serial_outcomes(generator, max_problems)
        self._merge(outcomes, store, report, max_problems)
        report.total_seconds = time.perf_counter() - start
        return store, report

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _serial_outcomes(
        self,
        generator: ProblemGenerator,
        max_problems: int | None,
    ) -> Iterator[tuple[StoredSpeech, int] | None]:
        """Per-query outcomes, solved lazily in the calling process.

        Queries beyond the ``max_problems`` cap are never built (the
        merge step stops storing once the cap is hit, so yielding None
        for them keeps the accounting identical at zero cost).
        """
        solved = 0
        for query in generator.enumerate_queries():
            if max_problems is not None and solved >= max_problems:
                yield None
                continue
            outcome = _solve_query(generator, self._summarizer, self._realizer, query)
            if outcome is not None:
                solved += 1
            yield outcome

    def _parallel_outcomes(
        self,
        generator: ProblemGenerator,
        workers: int,
        pool: WorkerPool | None,
        chunk_size: int | None,
        max_problems: int | None,
    ) -> Iterator[tuple[StoredSpeech, int] | None]:
        """Per-query outcomes computed by a worker pool, in query order.

        The query stream is never materialised: chunks come from
        :meth:`ProblemGenerator.enumerate_query_chunks` and the pool
        submits them with bounded look-ahead, collecting results
        first-in-first-out — so flattening them reproduces the exact
        enumeration order no matter which worker solved which chunk.
        Once ``max_problems`` speeches have been produced no further
        chunks are dispatched (chunks already in flight finish
        unobserved; a caller-owned pool stays usable).  The remaining
        queries are reported as bare None outcomes, which the merge
        step only counts, mirroring the serial path's cap behavior —
        their count comes from the arithmetic query counter, so the cap
        short-circuits without enumerating the tail.
        """
        total_queries = generator.count_queries()
        if not total_queries:
            return
        if chunk_size is None:
            chunk_size = default_chunk_size(total_queries, workers)
        context = (generator, self._summarizer, self._realizer)
        chunk_results = stream_solved_chunks(
            context, generator.enumerate_query_chunks(chunk_size), workers, pool
        )
        yielded = 0
        solved = 0
        for chunk_result in chunk_results:
            for outcome in chunk_result:
                yield outcome
                yielded += 1
                if outcome is not None:
                    solved += 1
            if max_problems is not None and solved >= max_problems:
                chunk_results.close()
                break
        for _ in range(total_queries - yielded):
            yield None

    def _merge(
        self,
        outcomes: Iterable[tuple[StoredSpeech, int] | None],
        store: SpeechStore,
        report: PreprocessingReport,
        max_problems: int | None,
    ) -> None:
        """Fold per-query outcomes (in enumeration order) into the store."""
        solved = 0
        for outcome in outcomes:
            report.queries_considered += 1
            if max_problems is not None and solved >= max_problems:
                continue
            if outcome is None:
                report.queries_skipped += 1
                continue
            stored, fact_evaluations = outcome
            store.add(stored)
            solved += 1
            report.speeches_generated += 1
            report.total_utility += stored.utility
            report.total_scaled_utility += stored.scaled_utility
            report.fact_evaluations += fact_evaluations
            report.query_labels.append(stored.query.describe())

    @staticmethod
    def lookup_query(store: SpeechStore, query: DataQuery):
        """Convenience wrapper for run-time lookups (store.best_match)."""
        return store.best_match(query)
