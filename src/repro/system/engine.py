"""The end-to-end voice query engine (Figure 2).

``VoiceQueryEngine`` combines the configuration, the problem generator,
a summarization algorithm, the speech store, the natural-language
parser and the speech realizer into the system the paper deploys on the
Google Assistant platform: pre-process once, then answer each voice
request by looking up the most related pre-generated speech.

The request path is split in two layers so the serving service
(:mod:`repro.serving`) can run many requests concurrently:

* :meth:`VoiceQueryEngine.respond` /
  :meth:`VoiceQueryEngine.respond_to` — the *stateless* path: parse,
  classify and answer against an explicit speech store (e.g. an
  immutable store snapshot), touching no session state, so concurrent
  callers on different snapshots never interfere;
* :meth:`VoiceQueryEngine.ask` — the interactive path layered on top:
  same answering logic plus the session log and repeat-state the
  single-session deployment analysis uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.algorithms.base import Summarizer
from repro.core.expectation import ExpectationModel
from repro.core.priors import Prior
from repro.relational.table import Table
from repro.system.classification import RequestType, classify_request
from repro.system.config import SummarizationConfig
from repro.system.nlq import NaturalLanguageParser, ParsedRequest
from repro.system.preprocessor import Preprocessor, PreprocessingReport
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore
from repro.system.templates import SpeechRealizer
from repro.system.worker_pool import WorkerPool


class ResponseKind(Enum):
    """What kind of answer the engine produced."""

    SPEECH = "speech"
    HELP = "help"
    REPEAT = "repeat"
    UNSUPPORTED = "unsupported"
    NO_DATA = "no_data"
    COMPARISON = "comparison"
    EXTREMUM = "extremum"
    #: Produced by the serving layer, never by the engine itself: the
    #: request's deadline expired before an answer was computed.
    TIMEOUT = "timeout"


_HELP_TEXT = (
    "You can ask about a value for a data subset, for example "
    "'what is the {target} for {example}?'. I answer with a short summary "
    "of the relevant data."
)
_UNSUPPORTED_TEXT = (
    "I can only answer questions about averages for data subsets; "
    "comparisons and extrema are not supported yet."
)
_NO_DATA_TEXT = "I have no summary for that data subset."


@dataclass
class VoiceResponse:
    """The engine's answer to one voice request.

    Attributes
    ----------
    kind:
        Category of the response.
    text:
        The text that would be sent to speech synthesis.
    request_type:
        The Table III classification of the request.
    query:
        The extracted data query, when the request was a data query.
    exact_match:
        For speech responses, whether the stored speech was generated
        for exactly the requested subset.
    latency_seconds:
        Time from receiving the transcript to having the response text
        (the run-time latency reported in Figure 10).
    """

    kind: ResponseKind
    text: str
    request_type: RequestType
    query: DataQuery | None = None
    exact_match: bool = False
    latency_seconds: float = 0.0


@dataclass
class SessionLog:
    """Chronological record of requests and responses (for analysis)."""

    requests: list[ParsedRequest] = field(default_factory=list)
    responses: list[VoiceResponse] = field(default_factory=list)


@dataclass
class SessionState:
    """One conversation's repeat-state and history.

    This is the engine's session primitive: :meth:`VoiceQueryEngine.ask`
    keeps one instance for its interactive session, and the serving
    layer's :class:`repro.api.sessions.SessionStore` keeps one per
    ``session_id`` — both observe responses through the same
    :meth:`observe`, so a "repeat" answered from either path replays
    exactly the same state.

    ``log_limit`` bounds the kept history (oldest exchanges roll off);
    the interactive engine keeps it unbounded for deployment analysis,
    while the serving layer caps it so one hot network session cannot
    grow memory with request count.  Trimming never affects the
    repeat-state; ``handled`` keeps the true exchange count.
    """

    log: SessionLog = field(default_factory=SessionLog)
    last_response: VoiceResponse | None = None
    log_limit: int | None = None
    handled: int = 0

    def observe(self, parsed: ParsedRequest, response: VoiceResponse) -> None:
        """Record one handled request.

        Every exchange lands in the log; the repeat-state only advances
        for non-repeat responses ("repeat" twice replays the same
        answer, matching the deployed assistant).
        """
        self.handled += 1
        self.log.requests.append(parsed)
        self.log.responses.append(response)
        if self.log_limit is not None and len(self.log.requests) > self.log_limit:
            excess = len(self.log.requests) - self.log_limit
            del self.log.requests[:excess]
            del self.log.responses[:excess]
        if response.kind is not ResponseKind.REPEAT:
            self.last_response = response


class VoiceQueryEngine:
    """Answer voice queries with pre-generated speech summaries.

    Parameters
    ----------
    config:
        Summarization configuration.
    table:
        The data table to expose.
    summarizer:
        Pre-processing algorithm (defaults to the one named in the
        configuration).
    prior / expectation_model:
        Optional overrides forwarded to the problem generator.
    target_synonyms / dimension_synonyms:
        Extra vocabulary for the natural-language parser.
    realizer:
        Speech realizer (phrasing of targets and dimensions).
    enable_advanced_queries:
        When True, comparison and extremum requests — which the paper's
        deployment logged as unsupported — are answered by the
        :mod:`repro.system.advanced` extension instead of an apology.
    use_shared_cube:
        When True, pre-processing serves candidate facts from one shared
        data cube per target instead of re-aggregating each query's
        subset; see :class:`repro.system.problem_generator.ProblemGenerator`.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        table: Table,
        summarizer: Summarizer | None = None,
        prior: Prior | None = None,
        expectation_model: ExpectationModel | None = None,
        target_synonyms: Mapping[str, Sequence[str]] | None = None,
        dimension_synonyms: Mapping[str, tuple[str, object]] | None = None,
        realizer: SpeechRealizer | None = None,
        enable_advanced_queries: bool = False,
        use_shared_cube: bool = False,
    ):
        self._config = config
        self._table = table
        self._realizer = realizer or SpeechRealizer()
        # Construction inputs retained so adopt_table can rebuild the
        # table-derived components against an updated table.
        self._prior = prior
        self._expectation_model = expectation_model
        self._target_synonyms = target_synonyms
        self._dimension_synonyms = dimension_synonyms
        self._use_shared_cube = use_shared_cube
        self._preprocessor = Preprocessor(config, summarizer=summarizer, realizer=self._realizer)
        self._store = SpeechStore()
        self._report: PreprocessingReport | None = None
        self._session = SessionState()
        self._advanced_enabled = enable_advanced_queries
        self._comparison_answerer = None
        self._extremum_answerer = None
        self._rebuild_table_components()

    def _rebuild_table_components(self) -> None:
        """(Re)derive everything built from the current table."""
        self._generator = ProblemGenerator(
            self._config,
            self._table,
            prior=self._prior,
            expectation_model=self._expectation_model,
            use_shared_cube=self._use_shared_cube,
        )
        self._parser = NaturalLanguageParser(
            self._config,
            self._table,
            target_synonyms=self._target_synonyms,
            dimension_synonyms=self._dimension_synonyms,
        )
        if self._advanced_enabled:
            from repro.system.advanced import ComparisonAnswerer, ExtremumAnswerer

            self._comparison_answerer = ComparisonAnswerer(
                self._table, self._config.dimensions, realizer=self._realizer
            )
            self._extremum_answerer = ExtremumAnswerer(
                self._table, self._config.dimensions, realizer=self._realizer
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> SummarizationConfig:
        """The engine's configuration."""
        return self._config

    @property
    def table(self) -> Table:
        """The data table the engine exposes."""
        return self._table

    @property
    def store(self) -> SpeechStore:
        """The speech store filled during pre-processing."""
        return self._store

    @property
    def summarizer(self) -> Summarizer:
        """The pre-processing algorithm (shared with maintenance)."""
        return self._preprocessor.summarizer

    @property
    def realizer(self) -> SpeechRealizer:
        """The speech realizer (phrasing of targets and dimensions)."""
        return self._realizer

    @property
    def report(self) -> PreprocessingReport | None:
        """The last pre-processing report (None before preprocessing)."""
        return self._report

    @property
    def parser(self) -> NaturalLanguageParser:
        """The natural-language parser."""
        return self._parser

    @property
    def advanced_enabled(self) -> bool:
        """Whether comparison/extremum requests are answered at run time."""
        return self._advanced_enabled

    @property
    def session_log(self) -> SessionLog:
        """Requests and responses handled so far."""
        return self._session.log

    @property
    def session(self) -> SessionState:
        """The interactive session's repeat-state and history."""
        return self._session

    # ------------------------------------------------------------------
    # Pre-processing
    # ------------------------------------------------------------------
    def preprocess(
        self,
        max_problems: int | None = None,
        workers: int = 0,
        pool: WorkerPool | None = None,
    ) -> PreprocessingReport:
        """Generate speeches for all queries up to the configured length.

        ``workers`` > 1 runs the batch on a per-run process pool;
        passing ``pool`` reuses a caller-owned
        :class:`repro.system.worker_pool.WorkerPool` instead (one
        deployment-lifetime pool amortises process start-up across
        repeated pre-processing and maintenance passes).  Either way
        the resulting store is identical to a serial run (see
        :class:`Preprocessor`).
        """
        self._store, self._report = self._preprocessor.run(
            self._generator,
            store=SpeechStore(),
            max_problems=max_problems,
            workers=workers,
            pool=pool,
        )
        return self._report

    def save_speeches(self, path: str) -> None:
        """Persist the pre-generated speeches (and the configuration) to JSON."""
        from repro.system.persistence import save_store

        save_store(self._store, path, self._config)

    def load_speeches(self, path: str) -> int:
        """Load pre-generated speeches from a JSON artifact.

        Returns the number of speeches loaded.  The artifact's
        configuration (if present) is ignored; the engine keeps its own.
        """
        from repro.system.persistence import load_store

        store, _config = load_store(path)
        self._store = store
        return len(store)

    def swap_store(self, store: SpeechStore) -> SpeechStore:
        """Replace the engine's speech store, returning the previous one.

        The swap is a single reference assignment (atomic under the
        GIL); requests already answering from the previous store finish
        against it.  The serving service uses this to adopt the final
        maintenance snapshot when it stops.
        """
        previous, self._store = self._store, store
        return previous

    def adopt_table(self, table: Table) -> None:
        """Replace the engine's data table (e.g. after external appends).

        The serving service's maintenance scheduler advances its own
        table with every append; at service stop the engine must follow
        so parsing (new dimension values), advanced answers and any
        future pre-processing see the same data the maintained store
        was built from.  Rebuilds the problem generator, parser and
        advanced answerers against the new table.
        """
        self._table = table
        self._rebuild_table_components()

    # ------------------------------------------------------------------
    # Run time
    # ------------------------------------------------------------------
    def ask(self, text: str) -> VoiceResponse:
        """Answer one voice request (a transcript string).

        The interactive path: answers exactly like :meth:`respond`
        against the engine's own store, and additionally records the
        request in the session log and keeps the repeat-state.
        """
        start = time.perf_counter()
        parsed, request_type = self.parse_and_classify(text)
        response = self._respond(
            parsed, request_type, last_response=self._session.last_response
        )
        response.latency_seconds = time.perf_counter() - start
        self._session.observe(parsed, response)
        return response

    def parse_and_classify(self, text: str) -> tuple[ParsedRequest, RequestType]:
        """Parse a transcript and classify it (Table III categories).

        Read-only on the engine; the serving service runs this inline
        on its event loop before deciding where to answer the request.
        """
        parsed = self._parser.parse(text)
        return parsed, classify_request(parsed, self._config)

    def respond(
        self,
        text: str,
        store: SpeechStore | None = None,
        last_response: VoiceResponse | None = None,
    ) -> VoiceResponse:
        """Answer one voice request statelessly.

        Unlike :meth:`ask` this touches no engine state: lookups go to
        ``store`` (default: the engine's own store — e.g. pass a
        :class:`repro.serving.snapshots.StoreSnapshot`'s store to answer
        from a consistent snapshot), the session log is not written and
        repeat requests replay ``last_response`` (the caller owns any
        per-session history).  Safe for concurrent callers.
        """
        start = time.perf_counter()
        parsed, request_type = self.parse_and_classify(text)
        response = self.respond_to(
            parsed, request_type, store=store, last_response=last_response
        )
        response.latency_seconds = time.perf_counter() - start
        return response

    def respond_to(
        self,
        parsed: ParsedRequest,
        request_type: RequestType,
        store: SpeechStore | None = None,
        last_response: VoiceResponse | None = None,
    ) -> VoiceResponse:
        """Answer an already parsed and classified request statelessly."""
        return self._respond(
            parsed, request_type, store=store, last_response=last_response
        )

    def answer_query(self, query: DataQuery, store: SpeechStore | None = None) -> VoiceResponse:
        """Answer a structured data query directly (bypassing parsing)."""
        start = time.perf_counter()
        response = self._lookup(query, store=store)
        response.latency_seconds = time.perf_counter() - start
        return response

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _respond(
        self,
        parsed: ParsedRequest,
        request_type: RequestType,
        store: SpeechStore | None = None,
        last_response: VoiceResponse | None = None,
    ) -> VoiceResponse:
        if request_type is RequestType.HELP:
            return VoiceResponse(
                kind=ResponseKind.HELP,
                text=self._help_text(),
                request_type=request_type,
            )
        if request_type is RequestType.REPEAT:
            text = last_response.text if last_response else self._help_text()
            return VoiceResponse(
                kind=ResponseKind.REPEAT, text=text, request_type=request_type
            )
        if request_type is RequestType.SUPPORTED_QUERY and parsed.query is not None:
            response = self._lookup(parsed.query, store=store)
            response.request_type = request_type
            return response
        if request_type is RequestType.UNSUPPORTED_QUERY:
            advanced = self._try_advanced(parsed) if self._advanced_enabled else None
            if advanced is not None:
                advanced.request_type = request_type
                return advanced
            return VoiceResponse(
                kind=ResponseKind.UNSUPPORTED,
                text=_UNSUPPORTED_TEXT,
                request_type=request_type,
                query=parsed.query,
            )
        return VoiceResponse(
            kind=ResponseKind.UNSUPPORTED,
            text=self._help_text(),
            request_type=request_type,
        )

    def _lookup(self, query: DataQuery, store: SpeechStore | None = None) -> VoiceResponse:
        store = store if store is not None else self._store
        match = store.best_match(query)
        if match is None:
            return VoiceResponse(
                kind=ResponseKind.NO_DATA,
                text=_NO_DATA_TEXT,
                request_type=RequestType.SUPPORTED_QUERY,
                query=query,
            )
        return VoiceResponse(
            kind=ResponseKind.SPEECH,
            text=match.stored.text,
            request_type=RequestType.SUPPORTED_QUERY,
            query=query,
            exact_match=match.exact,
        )

    def _try_advanced(self, parsed: ParsedRequest) -> VoiceResponse | None:
        """Answer a comparison or extremum request via the extension.

        Returns None when the request cannot be interpreted (missing
        target, too few values), so the caller falls back to the
        standard unsupported-query response.
        """
        from repro.system.nlq import RequestKind

        if parsed.query is None or parsed.query.target not in self._config.targets:
            return None
        target = parsed.query.target

        if parsed.kind is RequestKind.COMPARISON and self._comparison_answerer is not None:
            pairs = self._comparison_pair(parsed)
            if pairs is None:
                return None
            first, second = pairs
            answer = self._comparison_answerer.compare(target, first, second)
            if answer is None:
                return None
            return VoiceResponse(
                kind=ResponseKind.COMPARISON,
                text=answer.text,
                request_type=RequestType.UNSUPPORTED_QUERY,
                query=parsed.query,
            )

        if parsed.kind is RequestKind.EXTREMUM and self._extremum_answerer is not None:
            dimension = parsed.mentioned_dimension
            if dimension is None and parsed.value_mentions:
                dimension = parsed.value_mentions[0][0]
            if dimension is None:
                return None
            base = {
                column: value
                for column, value in parsed.query.predicate_map.items()
                if column != dimension
            }
            answer = self._extremum_answerer.extremum(
                target, dimension, maximize=not parsed.wants_minimum, base_predicates=base
            )
            if answer is None:
                return None
            return VoiceResponse(
                kind=ResponseKind.EXTREMUM,
                text=answer.text,
                request_type=RequestType.UNSUPPORTED_QUERY,
                query=parsed.query,
            )
        return None

    @staticmethod
    def _comparison_pair(parsed: ParsedRequest):
        """The two compared subsets: two values of the same dimension."""
        by_dimension: dict[str, list] = {}
        for dimension, value in parsed.value_mentions:
            bucket = by_dimension.setdefault(dimension, [])
            if value not in bucket:
                bucket.append(value)
        for dimension, values in by_dimension.items():
            if len(values) >= 2:
                return {dimension: values[0]}, {dimension: values[1]}
        return None

    def _help_text(self) -> str:
        target = self._config.targets[0].replace("_", " ")
        dimension = self._config.dimensions[0]
        values = self._table.column(dimension).distinct_values()
        example = str(values[0]) if values else dimension
        return _HELP_TEXT.format(target=target, example=example)
