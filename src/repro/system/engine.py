"""The end-to-end voice query engine (Figure 2).

``VoiceQueryEngine`` combines the configuration, the problem generator,
a summarization algorithm, the speech store, the natural-language
parser and the speech realizer into the system the paper deploys on the
Google Assistant platform: pre-process once, then answer each voice
request by looking up the most related pre-generated speech.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.algorithms.base import Summarizer
from repro.core.expectation import ExpectationModel
from repro.core.priors import Prior
from repro.relational.table import Table
from repro.system.classification import RequestType, classify_request
from repro.system.config import SummarizationConfig
from repro.system.nlq import NaturalLanguageParser, ParsedRequest
from repro.system.preprocessor import Preprocessor, PreprocessingReport
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore
from repro.system.templates import SpeechRealizer
from repro.system.worker_pool import WorkerPool


class ResponseKind(Enum):
    """What kind of answer the engine produced."""

    SPEECH = "speech"
    HELP = "help"
    REPEAT = "repeat"
    UNSUPPORTED = "unsupported"
    NO_DATA = "no_data"
    COMPARISON = "comparison"
    EXTREMUM = "extremum"


_HELP_TEXT = (
    "You can ask about a value for a data subset, for example "
    "'what is the {target} for {example}?'. I answer with a short summary "
    "of the relevant data."
)
_UNSUPPORTED_TEXT = (
    "I can only answer questions about averages for data subsets; "
    "comparisons and extrema are not supported yet."
)
_NO_DATA_TEXT = "I have no summary for that data subset."


@dataclass
class VoiceResponse:
    """The engine's answer to one voice request.

    Attributes
    ----------
    kind:
        Category of the response.
    text:
        The text that would be sent to speech synthesis.
    request_type:
        The Table III classification of the request.
    query:
        The extracted data query, when the request was a data query.
    exact_match:
        For speech responses, whether the stored speech was generated
        for exactly the requested subset.
    latency_seconds:
        Time from receiving the transcript to having the response text
        (the run-time latency reported in Figure 10).
    """

    kind: ResponseKind
    text: str
    request_type: RequestType
    query: DataQuery | None = None
    exact_match: bool = False
    latency_seconds: float = 0.0


@dataclass
class SessionLog:
    """Chronological record of requests and responses (for analysis)."""

    requests: list[ParsedRequest] = field(default_factory=list)
    responses: list[VoiceResponse] = field(default_factory=list)


class VoiceQueryEngine:
    """Answer voice queries with pre-generated speech summaries.

    Parameters
    ----------
    config:
        Summarization configuration.
    table:
        The data table to expose.
    summarizer:
        Pre-processing algorithm (defaults to the one named in the
        configuration).
    prior / expectation_model:
        Optional overrides forwarded to the problem generator.
    target_synonyms / dimension_synonyms:
        Extra vocabulary for the natural-language parser.
    realizer:
        Speech realizer (phrasing of targets and dimensions).
    enable_advanced_queries:
        When True, comparison and extremum requests — which the paper's
        deployment logged as unsupported — are answered by the
        :mod:`repro.system.advanced` extension instead of an apology.
    use_shared_cube:
        When True, pre-processing serves candidate facts from one shared
        data cube per target instead of re-aggregating each query's
        subset; see :class:`repro.system.problem_generator.ProblemGenerator`.
    """

    def __init__(
        self,
        config: SummarizationConfig,
        table: Table,
        summarizer: Summarizer | None = None,
        prior: Prior | None = None,
        expectation_model: ExpectationModel | None = None,
        target_synonyms: Mapping[str, Sequence[str]] | None = None,
        dimension_synonyms: Mapping[str, tuple[str, object]] | None = None,
        realizer: SpeechRealizer | None = None,
        enable_advanced_queries: bool = False,
        use_shared_cube: bool = False,
    ):
        self._config = config
        self._table = table
        self._realizer = realizer or SpeechRealizer()
        self._generator = ProblemGenerator(
            config,
            table,
            prior=prior,
            expectation_model=expectation_model,
            use_shared_cube=use_shared_cube,
        )
        self._preprocessor = Preprocessor(config, summarizer=summarizer, realizer=self._realizer)
        self._parser = NaturalLanguageParser(
            config, table, target_synonyms=target_synonyms, dimension_synonyms=dimension_synonyms
        )
        self._store = SpeechStore()
        self._report: PreprocessingReport | None = None
        self._last_response: VoiceResponse | None = None
        self._log = SessionLog()
        self._advanced_enabled = enable_advanced_queries
        self._comparison_answerer = None
        self._extremum_answerer = None
        if enable_advanced_queries:
            from repro.system.advanced import ComparisonAnswerer, ExtremumAnswerer

            self._comparison_answerer = ComparisonAnswerer(
                table, config.dimensions, realizer=self._realizer
            )
            self._extremum_answerer = ExtremumAnswerer(
                table, config.dimensions, realizer=self._realizer
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> SummarizationConfig:
        """The engine's configuration."""
        return self._config

    @property
    def table(self) -> Table:
        """The data table the engine exposes."""
        return self._table

    @property
    def store(self) -> SpeechStore:
        """The speech store filled during pre-processing."""
        return self._store

    @property
    def report(self) -> PreprocessingReport | None:
        """The last pre-processing report (None before preprocessing)."""
        return self._report

    @property
    def parser(self) -> NaturalLanguageParser:
        """The natural-language parser."""
        return self._parser

    @property
    def session_log(self) -> SessionLog:
        """Requests and responses handled so far."""
        return self._log

    # ------------------------------------------------------------------
    # Pre-processing
    # ------------------------------------------------------------------
    def preprocess(
        self,
        max_problems: int | None = None,
        workers: int = 0,
        pool: WorkerPool | None = None,
    ) -> PreprocessingReport:
        """Generate speeches for all queries up to the configured length.

        ``workers`` > 1 runs the batch on a per-run process pool;
        passing ``pool`` reuses a caller-owned
        :class:`repro.system.worker_pool.WorkerPool` instead (one
        deployment-lifetime pool amortises process start-up across
        repeated pre-processing and maintenance passes).  Either way
        the resulting store is identical to a serial run (see
        :class:`Preprocessor`).
        """
        self._store, self._report = self._preprocessor.run(
            self._generator,
            store=SpeechStore(),
            max_problems=max_problems,
            workers=workers,
            pool=pool,
        )
        return self._report

    def save_speeches(self, path: str) -> None:
        """Persist the pre-generated speeches (and the configuration) to JSON."""
        from repro.system.persistence import save_store

        save_store(self._store, path, self._config)

    def load_speeches(self, path: str) -> int:
        """Load pre-generated speeches from a JSON artifact.

        Returns the number of speeches loaded.  The artifact's
        configuration (if present) is ignored; the engine keeps its own.
        """
        from repro.system.persistence import load_store

        store, _config = load_store(path)
        self._store = store
        return len(store)

    # ------------------------------------------------------------------
    # Run time
    # ------------------------------------------------------------------
    def ask(self, text: str) -> VoiceResponse:
        """Answer one voice request (a transcript string)."""
        start = time.perf_counter()
        parsed = self._parser.parse(text)
        request_type = classify_request(parsed, self._config)
        response = self._respond(parsed, request_type)
        response.latency_seconds = time.perf_counter() - start
        self._log.requests.append(parsed)
        self._log.responses.append(response)
        if response.kind is not ResponseKind.REPEAT:
            self._last_response = response
        return response

    def answer_query(self, query: DataQuery) -> VoiceResponse:
        """Answer a structured data query directly (bypassing parsing)."""
        start = time.perf_counter()
        response = self._lookup(query)
        response.latency_seconds = time.perf_counter() - start
        return response

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _respond(self, parsed: ParsedRequest, request_type: RequestType) -> VoiceResponse:
        if request_type is RequestType.HELP:
            return VoiceResponse(
                kind=ResponseKind.HELP,
                text=self._help_text(),
                request_type=request_type,
            )
        if request_type is RequestType.REPEAT:
            text = self._last_response.text if self._last_response else self._help_text()
            return VoiceResponse(
                kind=ResponseKind.REPEAT, text=text, request_type=request_type
            )
        if request_type is RequestType.SUPPORTED_QUERY and parsed.query is not None:
            response = self._lookup(parsed.query)
            response.request_type = request_type
            return response
        if request_type is RequestType.UNSUPPORTED_QUERY:
            advanced = self._try_advanced(parsed) if self._advanced_enabled else None
            if advanced is not None:
                advanced.request_type = request_type
                return advanced
            return VoiceResponse(
                kind=ResponseKind.UNSUPPORTED,
                text=_UNSUPPORTED_TEXT,
                request_type=request_type,
                query=parsed.query,
            )
        return VoiceResponse(
            kind=ResponseKind.UNSUPPORTED,
            text=self._help_text(),
            request_type=request_type,
        )

    def _lookup(self, query: DataQuery) -> VoiceResponse:
        match = self._store.best_match(query)
        if match is None:
            return VoiceResponse(
                kind=ResponseKind.NO_DATA,
                text=_NO_DATA_TEXT,
                request_type=RequestType.SUPPORTED_QUERY,
                query=query,
            )
        return VoiceResponse(
            kind=ResponseKind.SPEECH,
            text=match.stored.text,
            request_type=RequestType.SUPPORTED_QUERY,
            query=query,
            exact_match=match.exact,
        )

    def _try_advanced(self, parsed: ParsedRequest) -> VoiceResponse | None:
        """Answer a comparison or extremum request via the extension.

        Returns None when the request cannot be interpreted (missing
        target, too few values), so the caller falls back to the
        standard unsupported-query response.
        """
        from repro.system.nlq import RequestKind

        if parsed.query is None or parsed.query.target not in self._config.targets:
            return None
        target = parsed.query.target

        if parsed.kind is RequestKind.COMPARISON and self._comparison_answerer is not None:
            pairs = self._comparison_pair(parsed)
            if pairs is None:
                return None
            first, second = pairs
            answer = self._comparison_answerer.compare(target, first, second)
            if answer is None:
                return None
            return VoiceResponse(
                kind=ResponseKind.COMPARISON,
                text=answer.text,
                request_type=RequestType.UNSUPPORTED_QUERY,
                query=parsed.query,
            )

        if parsed.kind is RequestKind.EXTREMUM and self._extremum_answerer is not None:
            dimension = parsed.mentioned_dimension
            if dimension is None and parsed.value_mentions:
                dimension = parsed.value_mentions[0][0]
            if dimension is None:
                return None
            base = {
                column: value
                for column, value in parsed.query.predicate_map.items()
                if column != dimension
            }
            answer = self._extremum_answerer.extremum(
                target, dimension, maximize=not parsed.wants_minimum, base_predicates=base
            )
            if answer is None:
                return None
            return VoiceResponse(
                kind=ResponseKind.EXTREMUM,
                text=answer.text,
                request_type=RequestType.UNSUPPORTED_QUERY,
                query=parsed.query,
            )
        return None

    @staticmethod
    def _comparison_pair(parsed: ParsedRequest):
        """The two compared subsets: two values of the same dimension."""
        by_dimension: dict[str, list] = {}
        for dimension, value in parsed.value_mentions:
            bucket = by_dimension.setdefault(dimension, [])
            if value not in bucket:
                bucket.append(value)
        for dimension, values in by_dimension.items():
            if len(values) >= 2:
                return {dimension: values[0]}, {dimension: values[1]}
        return None

    def _help_text(self) -> str:
        target = self._config.targets[0].replace("_", " ")
        dimension = self._config.dimensions[0]
        values = self._table.column(dimension).distinct_values()
        example = str(values[0]) if values else dimension
        return _HELP_TEXT.format(target=target, example=example)
