"""Speech templates: turning fact sets into natural-language text.

Section III: "After selecting a (near-)optimal fact combination, the
speech is generated according to a simple text template" and "Speeches
are prefixed with a description of the summarized data subset".  The
realizer below follows the style of the example speeches in Table II of
the paper:

    "About 80 out of 1000 elder persons identify as visually impaired.
     It is 17 for adults.  It is 3 for teenagers in Manhattan."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import math

from repro.core.model import Fact, Scope, Speech
from repro.system.queries import DataQuery


def _magnitude(value: float) -> int:
    """Order of magnitude of a non-zero value (floor of log10)."""
    return int(math.floor(math.log10(abs(value))))


@dataclass(frozen=True)
class TargetPhrasing:
    """How to verbalise one target column.

    Attributes
    ----------
    subject:
        Noun phrase for the quantity, e.g. "the average delay".
    unit:
        Unit suffix appended to values, e.g. " minutes" or "%".
    scale:
        Multiplier applied to raw values before formatting (e.g. 100 to
        turn a 0/1 cancellation indicator into a percentage).
    decimals:
        Number of decimal places.
    """

    subject: str
    unit: str = ""
    scale: float = 1.0
    decimals: int = 1


class SpeechRealizer:
    """Renders speeches (and their data-subset prefix) as English text.

    Parameters
    ----------
    target_phrasings:
        Optional per-target phrasing overrides; unlisted targets use a
        generic "the average <column name>" phrasing.
    dimension_labels:
        Optional per-dimension labels used in scope descriptions
        ("season Winter" instead of "season=Winter").
    """

    def __init__(
        self,
        target_phrasings: Mapping[str, TargetPhrasing] | None = None,
        dimension_labels: Mapping[str, str] | None = None,
    ):
        self._phrasings = dict(target_phrasings or {})
        self._dimension_labels = dict(dimension_labels or {})

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def realize(self, query: DataQuery, speech: Speech) -> str:
        """Full voice output: subset prefix plus one sentence per fact."""
        prefix = self.subset_prefix(query)
        body = self.realize_facts(query.target, speech, base_scope=query.scope())
        if prefix:
            return f"{prefix} {body}".strip()
        return body

    def subset_prefix(self, query: DataQuery) -> str:
        """The prefix describing the summarized data subset."""
        if not query.predicates:
            return ""
        parts = [self._scope_item(col, val) for col, val in query.predicates]
        return f"For {self._join_phrases(parts)}:"

    def realize_facts(self, target: str, speech: Speech, base_scope: Scope | None = None) -> str:
        """Render the facts of a speech (without the query prefix)."""
        base_scope = base_scope or Scope()
        sentences = []
        for position, fact in enumerate(speech.facts):
            sentences.append(self._fact_sentence(target, fact, base_scope, position == 0))
        if not sentences:
            return "No summary is available."
        return " ".join(sentences)

    def realize_fact(self, target: str, fact: Fact) -> str:
        """Render a single fact as a standalone sentence."""
        return self._fact_sentence(target, fact, Scope(), leading=True)

    def format_value(self, target: str, value: float) -> str:
        """Format a target value with the target's phrasing (unit, scale)."""
        return self._format_value(target, value)

    def subject(self, target: str) -> str:
        """The noun phrase used for a target column, e.g. "the average delay"."""
        return self._phrasing(target).subject

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _phrasing(self, target: str) -> TargetPhrasing:
        phrasing = self._phrasings.get(target)
        if phrasing is not None:
            return phrasing
        return TargetPhrasing(subject=f"the average {target.replace('_', ' ')}")

    def _format_value(self, target: str, value: float) -> str:
        phrasing = self._phrasing(target)
        scaled = value * phrasing.scale
        decimals = phrasing.decimals
        # Small non-zero values need extra precision to stay meaningful
        # ("0.04" rather than "0" for a 4% cancellation probability).
        if scaled != 0.0 and abs(scaled) < 10 ** (-decimals):
            decimals = max(decimals, 2 - _magnitude(scaled))
        formatted = f"{scaled:.{decimals}f}"
        # Trim trailing zeros for cleaner speech ("20" instead of "20.0").
        if "." in formatted:
            formatted = formatted.rstrip("0").rstrip(".")
        return f"{formatted}{phrasing.unit}"

    def _scope_item(self, column: str, value) -> str:
        label = self._dimension_labels.get(column, column.replace("_", " "))
        return f"{label} {value}"

    @staticmethod
    def _join_phrases(parts: list[str]) -> str:
        if not parts:
            return ""
        if len(parts) == 1:
            return parts[0]
        return ", ".join(parts[:-1]) + " and " + parts[-1]

    def _fact_sentence(
        self,
        target: str,
        fact: Fact,
        base_scope: Scope,
        leading: bool,
    ) -> str:
        phrasing = self._phrasing(target)
        value_text = self._format_value(target, fact.value)
        # Only mention scope restrictions beyond the query's own predicates.
        extra = {
            col: val
            for col, val in fact.scope.assignments.items()
            if not (base_scope.restricts(col) and base_scope.value(col) == val)
        }
        scope_text = self._join_phrases(
            [self._scope_item(col, val) for col, val in sorted(extra.items())]
        )
        if leading:
            if scope_text:
                return f"{phrasing.subject.capitalize()} for {scope_text} is {value_text}."
            return f"{phrasing.subject.capitalize()} is {value_text} overall."
        if scope_text:
            return f"It is {value_text} for {scope_text}."
        return f"It is {value_text} overall."
