"""Speech templates: turning fact sets into natural-language text.

Section III: "After selecting a (near-)optimal fact combination, the
speech is generated according to a simple text template" and "Speeches
are prefixed with a description of the summarized data subset".  The
realizer below follows the style of the example speeches in Table II of
the paper:

    "About 80 out of 1000 elder persons identify as visually impaired.
     It is 17 for adults.  It is 3 for teenagers in Manhattan."

Realization is a run-time hot path once pre-processing is fast (a batch
renders one speech per query; the serving benchmarks render thousands),
and the rendered fragments repeat heavily: the same subset prefixes,
scope items, formatted values and whole fact sentences recur across
speeches.  The realizer therefore memoizes those fragments per instance
(``fragment_cache=True``, the default).  Every cache key captures all
inputs of the fragment it stores, so cached output is byte-identical to
the uncached path (``fragment_cache=False``, kept as the parity
oracle); caches are capped so a long-lived serving process cannot grow
them without bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import math

from repro.core.model import Fact, Scope, Speech
from repro.system.queries import DataQuery


def _magnitude(value: float) -> int:
    """Order of magnitude of a non-zero value (floor of log10)."""
    return int(math.floor(math.log10(abs(value))))


#: Per-cache entry cap.  Pre-generated speeches draw fragments from a
#: finite vocabulary, but advanced (comparison/extremum) answers format
#: arbitrary computed values; beyond the cap new fragments are simply
#: rendered uncached.
FRAGMENT_CACHE_LIMIT = 65536


@dataclass(frozen=True)
class TargetPhrasing:
    """How to verbalise one target column.

    Attributes
    ----------
    subject:
        Noun phrase for the quantity, e.g. "the average delay".
    unit:
        Unit suffix appended to values, e.g. " minutes" or "%".
    scale:
        Multiplier applied to raw values before formatting (e.g. 100 to
        turn a 0/1 cancellation indicator into a percentage).
    decimals:
        Number of decimal places.
    """

    subject: str
    unit: str = ""
    scale: float = 1.0
    decimals: int = 1


class SpeechRealizer:
    """Renders speeches (and their data-subset prefix) as English text.

    Parameters
    ----------
    target_phrasings:
        Optional per-target phrasing overrides; unlisted targets use a
        generic "the average <column name>" phrasing.
    dimension_labels:
        Optional per-dimension labels used in scope descriptions
        ("season Winter" instead of "season=Winter").
    fragment_cache:
        When True (the default), rendered fragments — target phrasings,
        scope items, formatted values, subset prefixes and fact
        sentences — are memoized per instance; False renders everything
        from scratch (the parity oracle).  Output is byte-identical
        either way.
    """

    def __init__(
        self,
        target_phrasings: Mapping[str, TargetPhrasing] | None = None,
        dimension_labels: Mapping[str, str] | None = None,
        fragment_cache: bool = True,
    ):
        self._phrasings = dict(target_phrasings or {})
        self._dimension_labels = dict(dimension_labels or {})
        self._fragment_cache = bool(fragment_cache)
        # Fragment caches; every key captures the full input of the
        # fragment it stores.  Excluded from pickling (__getstate__) so
        # worker-pool context broadcasts stay slim.
        self._generic_phrasings: dict[str, TargetPhrasing] = {}
        self._value_fragments: dict[tuple[str, float], str] = {}
        self._scope_fragments: dict[tuple[str, Any], str] = {}
        self._prefix_fragments: dict[tuple, str] = {}
        self._sentence_fragments: dict[tuple, str] = {}

    def __getstate__(self) -> dict[str, Any]:
        # Caches are rebuilt on demand; shipping them to pool workers
        # would only bloat the context broadcast.
        return {
            "_phrasings": self._phrasings,
            "_dimension_labels": self._dimension_labels,
            "_fragment_cache": self._fragment_cache,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(
            target_phrasings=state["_phrasings"],
            dimension_labels=state["_dimension_labels"],
            fragment_cache=state["_fragment_cache"],
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def realize(self, query: DataQuery, speech: Speech) -> str:
        """Full voice output: subset prefix plus one sentence per fact."""
        prefix = self.subset_prefix(query)
        body = self.realize_facts(query.target, speech, base_scope=query.scope())
        if prefix:
            return f"{prefix} {body}".strip()
        return body

    def subset_prefix(self, query: DataQuery) -> str:
        """The prefix describing the summarized data subset."""
        if not query.predicates:
            return ""
        key = (query.target, self._assignments_key(query.predicates))
        cached = self._fragment(self._prefix_fragments, key)
        if cached is not None:
            return cached
        parts = [self._scope_item(col, val) for col, val in query.predicates]
        prefix = f"For {self._join_phrases(parts)}:"
        self._remember(self._prefix_fragments, key, prefix)
        return prefix

    def realize_facts(self, target: str, speech: Speech, base_scope: Scope | None = None) -> str:
        """Render the facts of a speech (without the query prefix)."""
        base_scope = base_scope or Scope()
        sentences = []
        for position, fact in enumerate(speech.facts):
            sentences.append(self._fact_sentence(target, fact, base_scope, position == 0))
        if not sentences:
            return "No summary is available."
        return " ".join(sentences)

    def realize_fact(self, target: str, fact: Fact) -> str:
        """Render a single fact as a standalone sentence."""
        return self._fact_sentence(target, fact, Scope(), leading=True)

    def format_value(self, target: str, value: float) -> str:
        """Format a target value with the target's phrasing (unit, scale)."""
        return self._format_value(target, value)

    def subject(self, target: str) -> str:
        """The noun phrase used for a target column, e.g. "the average delay"."""
        return self._phrasing(target).subject

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _assignments_key(items) -> tuple:
        """Exact cache key for (column, value) assignments.

        Values that compare (and hash) equal can still render
        differently — ``True`` vs ``1``, ``-0.0`` vs ``0.0`` — so the
        value's class *and* repr join the key: together they determine
        the rendered text for the scalar values dimensions carry, while
        never letting two differently-rendering values share a key.
        """
        return tuple(
            (column, value.__class__, repr(value)) for column, value in items
        )

    def _fragment(self, cache: dict, key) -> str | None:
        """A cached fragment, or None (cache disabled or not rendered yet)."""
        if not self._fragment_cache:
            return None
        return cache.get(key)

    def _remember(self, cache: dict, key, fragment) -> None:
        """Store a rendered fragment, respecting the per-cache cap."""
        if self._fragment_cache and len(cache) < FRAGMENT_CACHE_LIMIT:
            cache[key] = fragment

    def _phrasing(self, target: str) -> TargetPhrasing:
        phrasing = self._phrasings.get(target)
        if phrasing is not None:
            return phrasing
        # The generic phrasing is a pure function of the target name, so
        # it is cached even with fragment_cache off (it is not rendered
        # text, and the parity oracle needs the same object semantics).
        phrasing = self._generic_phrasings.get(target)
        if phrasing is None:
            phrasing = TargetPhrasing(subject=f"the average {target.replace('_', ' ')}")
            if len(self._generic_phrasings) < FRAGMENT_CACHE_LIMIT:
                self._generic_phrasings[target] = phrasing
        return phrasing

    def _format_value(self, target: str, value: float) -> str:
        # repr keeps value keys exact: 0.0 and -0.0 compare (and hash)
        # equal but format differently, so the raw float must not key
        # the cache.
        key = (target, repr(value))
        cached = self._fragment(self._value_fragments, key)
        if cached is not None:
            return cached
        formatted = self._render_value(target, value)
        self._remember(self._value_fragments, key, formatted)
        return formatted

    def _render_value(self, target: str, value: float) -> str:
        phrasing = self._phrasing(target)
        scaled = value * phrasing.scale
        decimals = phrasing.decimals
        # Small non-zero values need extra precision to stay meaningful
        # ("0.04" rather than "0" for a 4% cancellation probability).
        if scaled != 0.0 and abs(scaled) < 10 ** (-decimals):
            decimals = max(decimals, 2 - _magnitude(scaled))
        formatted = f"{scaled:.{decimals}f}"
        # Trim trailing zeros for cleaner speech ("20" instead of "20.0").
        if "." in formatted:
            formatted = formatted.rstrip("0").rstrip(".")
        return f"{formatted}{phrasing.unit}"

    def _scope_item(self, column: str, value) -> str:
        key = (column, value.__class__, repr(value))
        cached = self._fragment(self._scope_fragments, key)
        if cached is not None:
            return cached
        label = self._dimension_labels.get(column, column.replace("_", " "))
        item = f"{label} {value}"
        self._remember(self._scope_fragments, key, item)
        return item

    @staticmethod
    def _join_phrases(parts: list[str]) -> str:
        if not parts:
            return ""
        if len(parts) == 1:
            return parts[0]
        return ", ".join(parts[:-1]) + " and " + parts[-1]

    def _fact_sentence(
        self,
        target: str,
        fact: Fact,
        base_scope: Scope,
        leading: bool,
    ) -> str:
        key = (
            target,
            leading,
            repr(fact.value),
            self._assignments_key(fact.scope),
            self._assignments_key(base_scope),
        )
        cached = self._fragment(self._sentence_fragments, key)
        if cached is not None:
            return cached
        sentence = self._render_fact_sentence(target, fact, base_scope, leading)
        self._remember(self._sentence_fragments, key, sentence)
        return sentence

    def _render_fact_sentence(
        self,
        target: str,
        fact: Fact,
        base_scope: Scope,
        leading: bool,
    ) -> str:
        phrasing = self._phrasing(target)
        value_text = self._format_value(target, fact.value)
        # Only mention scope restrictions beyond the query's own predicates.
        extra = {
            col: val
            for col, val in fact.scope.assignments.items()
            if not (base_scope.restricts(col) and base_scope.value(col) == val)
        }
        scope_text = self._join_phrases(
            [self._scope_item(col, val) for col, val in sorted(extra.items())]
        )
        if leading:
            if scope_text:
                return f"{phrasing.subject.capitalize()} for {scope_text} is {value_text}."
            return f"{phrasing.subject.capitalize()} is {value_text} overall."
        if scope_text:
            return f"It is {value_text} for {scope_text}."
        return f"It is {value_text} overall."
