"""Estimation study (Figure 6).

Workers hear either the best-ranked or the worst-ranked speech about a
dataset and are then asked to estimate a grid of data points (in the
paper: visual-impairment prevalence for each New York City borough and
age group).  The study records, per data point, the median worker
estimate under each speech together with the correct value, so the
harness can verify that estimates based on the better speech track the
data more closely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Mapping, Sequence

from repro.core.model import Speech, SummarizationRelation
from repro.userstudy.worker import WorkerPool


@dataclass
class EstimationPoint:
    """One estimated data point."""

    assignments: dict[str, object]
    correct: float
    estimates: dict[str, float] = field(default_factory=dict)

    def error(self, label: str) -> float:
        """Absolute error of the median estimate under speech ``label``."""
        return abs(self.estimates[label] - self.correct)


@dataclass
class EstimationResult:
    """All estimated points of one study run."""

    points: list[EstimationPoint] = field(default_factory=list)
    hits: int = 0

    def mean_absolute_error(self, label: str) -> float:
        """Mean absolute error of median estimates for one speech."""
        if not self.points:
            return 0.0
        return sum(p.error(label) for p in self.points) / len(self.points)


class EstimationStudy:
    """Ask workers to estimate data points after hearing a speech."""

    def __init__(self, pool: WorkerPool | None = None, workers_per_point: int = 20):
        self._pool = pool or WorkerPool()
        self._workers_per_point = workers_per_point

    def run(
        self,
        relation: SummarizationRelation,
        speeches: Mapping[str, Speech],
        points: Sequence[Mapping[str, object]],
        prior: float,
    ) -> EstimationResult:
        """Collect median estimates for every point under every speech.

        Parameters
        ----------
        relation:
            The underlying data (provides the correct values).
        speeches:
            Speeches keyed by label (e.g. "best", "worst").
        points:
            Dimension-value assignments identifying the asked data points.
        prior:
            The value workers assume absent relevant facts.
        """
        result = EstimationResult()
        workers = self._pool.workers
        for assignments in points:
            correct = self._correct_value(relation, assignments)
            if correct is None:
                continue
            point = EstimationPoint(assignments=dict(assignments), correct=correct)
            for label, speech in speeches.items():
                estimates = []
                for index in range(self._workers_per_point):
                    worker = workers[index % len(workers)]
                    estimates.append(
                        worker.estimate(speech.facts, assignments, correct, prior)
                    )
                    result.hits += 1
                point.estimates[label] = float(median(estimates))
            result.points.append(point)
        return result

    @staticmethod
    def _correct_value(
        relation: SummarizationRelation, assignments: Mapping[str, object]
    ) -> float | None:
        from repro.core.model import Scope

        value, support = relation.average_target(Scope(dict(assignments)))
        if support == 0:
            return None
        return value
