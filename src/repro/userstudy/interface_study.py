"""Voice-vs-visual interface study (Figure 8).

Ten participants answer three randomly generated questions per
interface (the voice interface backed by pre-generated speeches, and a
generic visual analysis tool), then rate each interface's usability.
The paper reports that a majority of participants were slightly faster
with the voice interface and that usability ratings were comparable.

Participants are simulated: per-question answer time is drawn from
interface-specific distributions (voice answers are a single lookup and
a short listen; the visual tool requires navigation), and usability
ratings are noisy values around similar means.  The study still
exercises the real engine: every voice question is generated from the
configuration, sent through :meth:`VoiceQueryEngine.ask`, and the
engine must return a speech for the timing to count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import median
from typing import Sequence

from repro.system.engine import ResponseKind, VoiceQueryEngine


@dataclass
class ParticipantResult:
    """Per-participant outcome of the interface comparison."""

    participant: int
    vocal_time: float
    visual_time: float
    vocal_rating: float
    visual_rating: float


@dataclass
class InterfaceStudyResult:
    """Aggregated study output (Figure 8)."""

    participants: list[ParticipantResult] = field(default_factory=list)
    questions_asked: int = 0
    unanswered_questions: int = 0

    @property
    def median_vocal_time(self) -> float:
        """Median per-participant voice answer time (seconds)."""
        return median(p.vocal_time for p in self.participants) if self.participants else 0.0

    @property
    def median_visual_time(self) -> float:
        """Median per-participant visual answer time (seconds)."""
        return median(p.visual_time for p in self.participants) if self.participants else 0.0

    @property
    def faster_with_voice(self) -> int:
        """Number of participants who were faster with the voice interface."""
        return sum(1 for p in self.participants if p.vocal_time < p.visual_time)

    @property
    def mean_vocal_rating(self) -> float:
        """Mean usability rating of the voice interface."""
        if not self.participants:
            return 0.0
        return sum(p.vocal_rating for p in self.participants) / len(self.participants)

    @property
    def mean_visual_rating(self) -> float:
        """Mean usability rating of the visual interface."""
        if not self.participants:
            return 0.0
        return sum(p.visual_rating for p in self.participants) / len(self.participants)


class InterfaceStudy:
    """Simulate the voice-vs-visual comparison over a prepared engine."""

    def __init__(
        self,
        engine: VoiceQueryEngine,
        participants: int = 10,
        questions_per_interface: int = 3,
        seed: int = 5,
    ):
        self._engine = engine
        self._participants = participants
        self._questions = questions_per_interface
        self._rng = random.Random(seed)

    def run(self) -> InterfaceStudyResult:
        """Run the full study and return per-participant results."""
        result = InterfaceStudyResult()
        config = self._engine.config
        table_dimensions = list(config.dimensions)

        for participant in range(self._participants):
            vocal_times = []
            visual_times = []
            for _ in range(self._questions):
                question = self._random_question(table_dimensions)
                result.questions_asked += 1
                response = self._engine.ask(question)
                if response.kind is not ResponseKind.SPEECH:
                    result.unanswered_questions += 1
                # Voice: formulate the question, wait for the answer, listen.
                speaking_time = 4.0 + 0.05 * len(question)
                listening_time = 0.06 * len(response.text)
                vocal_times.append(
                    speaking_time + listening_time + self._rng.gauss(8.0, 4.0)
                )
                # Visual: navigate filters and read the chart.
                visual_times.append(self._rng.gauss(30.0, 10.0))
            result.participants.append(
                ParticipantResult(
                    participant=participant,
                    vocal_time=max(3.0, median(vocal_times)),
                    visual_time=max(3.0, median(visual_times)),
                    vocal_rating=_clip(self._rng.gauss(7.0, 1.5), 1.0, 10.0),
                    visual_rating=_clip(self._rng.gauss(6.5, 1.5), 1.0, 10.0),
                )
            )
        return result

    def _random_question(self, dimensions: Sequence[str]) -> str:
        """Generate a two-predicate retrieval question (as in the paper)."""
        config = self._engine.config
        count = min(2, len(dimensions), config.max_query_length)
        chosen = self._rng.sample(list(dimensions), count) if count else []
        values = []
        for dimension in chosen:
            domain = self._engine_table_values(dimension)
            values.append(str(self._rng.choice(domain)))
        target = self._rng.choice(list(config.targets)).replace("_", " ")
        if not values:
            return f"what is the {target} overall"
        return f"what is the {target} for " + " and ".join(values)

    def _engine_table_values(self, dimension: str):
        return self._engine.table.column(dimension).distinct_values()


def _clip(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to [low, high]."""
    return max(low, min(high, value))
