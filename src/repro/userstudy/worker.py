"""Simulated crowd workers.

A :class:`SimulatedWorker` mimics the behaviour the paper measured on
Amazon Mechanical Turk:

* When estimating a data point after hearing facts, the worker combines
  the values of the facts relevant to the point.  Most workers follow
  the *closest relevant value* strategy (the paper's model of user
  expectations, confirmed by Figure 7); a configurable minority uses
  other strategies (averaging, or picking the farthest value), plus
  multiplicative noise.
* When rating a speech on a 1-10 scale, the rating is a noisy,
  monotonically increasing function of the speech's (scaled) utility.
* When comparing two speeches, the better one wins with a probability
  that grows with the utility gap.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.model import Fact


class WorkerBehaviour(enum.Enum):
    """Strategies a worker may use to resolve conflicting facts."""

    CLOSEST = "closest"
    FARTHEST = "farthest"
    AVERAGE_SCOPE = "avg_scope"
    AVERAGE_ALL = "avg_all"


@dataclass
class SimulatedWorker:
    """One simulated crowd worker.

    Parameters
    ----------
    behaviour:
        Conflict-resolution strategy for estimates.
    noise:
        Relative noise applied to estimates (0.15 = about ±15%).
    rating_noise:
        Absolute noise (standard deviation, on the 1-10 scale) applied
        to quality ratings.
    seed:
        Per-worker RNG seed.
    """

    behaviour: WorkerBehaviour = WorkerBehaviour.CLOSEST
    noise: float = 0.15
    rating_noise: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Estimation behaviour
    # ------------------------------------------------------------------
    def estimate(
        self,
        facts: Sequence[Fact],
        row: Mapping[str, object],
        true_value: float,
        prior: float,
    ) -> float:
        """Estimate the target value of ``row`` after hearing ``facts``."""
        relevant = [fact.value for fact in facts if fact.covers_row(row)]
        all_values = [fact.value for fact in facts]
        base = self._combine(relevant, all_values, true_value, prior)
        spread = self.noise * (abs(base) + 1.0)
        return base + self._rng.gauss(0.0, spread)

    def _combine(
        self,
        relevant: list[float],
        all_values: list[float],
        true_value: float,
        prior: float,
    ) -> float:
        candidates = relevant + [prior]
        if self.behaviour is WorkerBehaviour.CLOSEST:
            return min(candidates, key=lambda v: abs(v - true_value))
        if self.behaviour is WorkerBehaviour.FARTHEST:
            return max(candidates, key=lambda v: abs(v - true_value))
        if self.behaviour is WorkerBehaviour.AVERAGE_SCOPE:
            return sum(relevant) / len(relevant) if relevant else prior
        if all_values:
            return sum(all_values) / len(all_values)
        return prior

    # ------------------------------------------------------------------
    # Rating behaviour
    # ------------------------------------------------------------------
    def rate(self, scaled_utility: float, adjective_bias: float = 0.0) -> float:
        """Rate a speech on a 1-10 scale given its scaled utility."""
        base = 4.5 + 4.0 * max(0.0, min(1.0, scaled_utility)) + adjective_bias
        rating = base + self._rng.gauss(0.0, self.rating_noise)
        return max(1.0, min(10.0, rating))

    def prefers(self, scaled_utility_a: float, scaled_utility_b: float) -> bool:
        """True when the worker prefers speech A over speech B."""
        gap = scaled_utility_a - scaled_utility_b
        probability = 1.0 / (1.0 + pow(2.718281828, -6.0 * gap))
        return self._rng.random() < probability


class WorkerPool:
    """A population of simulated workers.

    The default composition follows the paper's Figure 7 finding: the
    closest-value strategy explains workers best, but not perfectly, so
    a minority of workers use other strategies.
    """

    def __init__(
        self,
        size: int = 50,
        seed: int = 13,
        closest_fraction: float = 0.7,
        average_fraction: float = 0.2,
        noise: float = 0.15,
    ):
        if size < 1:
            raise ValueError("worker pool size must be at least 1")
        if not 0.0 <= closest_fraction + average_fraction <= 1.0:
            raise ValueError("behaviour fractions must sum to at most 1")
        rng = random.Random(seed)
        self._workers: list[SimulatedWorker] = []
        for index in range(size):
            draw = rng.random()
            if draw < closest_fraction:
                behaviour = WorkerBehaviour.CLOSEST
            elif draw < closest_fraction + average_fraction:
                behaviour = WorkerBehaviour.AVERAGE_SCOPE
            else:
                behaviour = WorkerBehaviour.FARTHEST
            self._workers.append(
                SimulatedWorker(
                    behaviour=behaviour,
                    noise=noise,
                    seed=rng.randrange(1 << 30),
                )
            )

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self):
        return iter(self._workers)

    @property
    def workers(self) -> list[SimulatedWorker]:
        """The pool's workers."""
        return list(self._workers)
