"""Speech rating studies (Figures 5 and 11).

Workers rate alternative descriptions of the same data on a 1-10 scale
for several adjectives ("Precise", "Good", "Complete", "Informative",
plus "Diverse" and "Concise" for the baseline comparison) and the study
counts how often each speech wins a pairwise comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.userstudy.worker import WorkerPool

#: Adjectives used in Figure 5.
DEFAULT_ADJECTIVES = ("Precise", "Good", "Complete", "Informative")
#: Additional adjectives used in the baseline comparison of Figure 11.
EXTENDED_ADJECTIVES = DEFAULT_ADJECTIVES + ("Diverse", "Concise")

#: Mild per-adjective offsets: e.g. point-valued speeches are perceived
#: as slightly more "precise" than "complete".
_ADJECTIVE_BIAS = {
    "Precise": 0.2,
    "Good": 0.0,
    "Complete": -0.2,
    "Informative": 0.1,
    "Diverse": -0.1,
    "Concise": 0.3,
}


@dataclass(frozen=True)
class SpeechCandidate:
    """One speech entered into a rating study.

    ``scaled_utility`` drives the simulated workers' perception;
    ``precision_bonus`` models presentation effects that are independent
    of utility (the paper observes that reporting point values instead
    of ranges boosts "Precise"/"Informative" ratings, Section VIII-E).
    """

    label: str
    text: str
    scaled_utility: float
    precision_bonus: float = 0.0


@dataclass
class RatingStudyResult:
    """Aggregated study output.

    ``average_ratings[label][adjective]`` is the mean 1-10 rating;
    ``wins[label]`` counts pairwise comparison wins across all
    adjectives and worker pairs (Figure 5 left / Figure 11 left).
    """

    average_ratings: dict[str, dict[str, float]] = field(default_factory=dict)
    wins: dict[str, int] = field(default_factory=dict)
    hits: int = 0

    def ranking(self) -> list[str]:
        """Candidate labels ordered by average rating over all adjectives."""
        def overall(label: str) -> float:
            ratings = self.average_ratings[label]
            return sum(ratings.values()) / len(ratings)

        return sorted(self.average_ratings, key=overall, reverse=True)


class RatingStudy:
    """Simulates an AMT rating study over a set of speech candidates."""

    def __init__(
        self,
        pool: WorkerPool | None = None,
        adjectives: Sequence[str] = DEFAULT_ADJECTIVES,
    ):
        self._pool = pool or WorkerPool()
        self._adjectives = tuple(adjectives)

    @property
    def adjectives(self) -> tuple[str, ...]:
        """Adjectives rated in this study."""
        return self._adjectives

    def run(self, candidates: Sequence[SpeechCandidate]) -> RatingStudyResult:
        """Collect ratings and pairwise wins for all candidates."""
        if len(candidates) < 2:
            raise ValueError("a rating study needs at least two candidates")
        result = RatingStudyResult(
            average_ratings={c.label: {} for c in candidates},
            wins={c.label: 0 for c in candidates},
        )

        # Ratings per adjective.
        totals: dict[str, dict[str, float]] = {
            c.label: {adj: 0.0 for adj in self._adjectives} for c in candidates
        }
        for worker in self._pool:
            for candidate in candidates:
                perceived = candidate.scaled_utility + candidate.precision_bonus
                for adjective in self._adjectives:
                    bias = _ADJECTIVE_BIAS.get(adjective, 0.0)
                    totals[candidate.label][adjective] += worker.rate(perceived, bias)
                    result.hits += 1
        for candidate in candidates:
            result.average_ratings[candidate.label] = {
                adjective: totals[candidate.label][adjective] / len(self._pool)
                for adjective in self._adjectives
            }

        # Pairwise comparisons: every worker compares every ordered pair once
        # per adjective (mirroring the relative-comparison HITs).
        for worker in self._pool:
            for first in candidates:
                for second in candidates:
                    if first.label >= second.label:
                        continue
                    for _ in self._adjectives:
                        first_quality = first.scaled_utility + first.precision_bonus
                        second_quality = second.scaled_utility + second.precision_bonus
                        if worker.prefers(first_quality, second_quality):
                            result.wins[first.label] += 1
                        else:
                            result.wins[second.label] += 1
                        result.hits += 1
        return result
