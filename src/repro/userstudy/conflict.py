"""Conflict-resolution study (Figure 7).

Workers are given four facts referencing two dimension columns (two
facts per column) and must estimate all four value combinations; each
combination is covered by exactly two conflicting facts.  The study
compares four models of how workers resolve the conflict — farthest
value, closest value, average over relevant facts, average over all
facts — by the median error between the model's prediction and the
workers' answers.  The paper finds the closest-value model fits best.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from statistics import median
from typing import Mapping, Sequence

from repro.core.expectation import available_models
from repro.core.model import Fact, Scope, SummarizationRelation
from repro.userstudy.worker import WorkerPool

#: Mapping from the expectation-model keys to the labels used in Figure 7.
MODEL_LABELS = {
    "farthest": "Farthest",
    "avg_scope": "Avg. Scope",
    "closest": "Closest",
    "avg_all": "Avg. All",
}


@dataclass
class ConflictStudyResult:
    """Median prediction error per conflict-resolution model."""

    errors: dict[str, float] = field(default_factory=dict)
    combinations: int = 0
    hits: int = 0

    def best_model(self) -> str:
        """Label of the model with minimal median error."""
        return min(self.errors, key=self.errors.get)


class ConflictStudy:
    """Simulates the conflicting-facts estimation experiment."""

    def __init__(self, pool: WorkerPool | None = None, workers_per_combination: int = 20):
        self._pool = pool or WorkerPool()
        self._workers_per_combination = workers_per_combination

    def build_facts(
        self,
        relation: SummarizationRelation,
        dimension_a: str,
        values_a: Sequence[object],
        dimension_b: str,
        values_b: Sequence[object],
    ) -> list[Fact]:
        """Create the four single-dimension facts handed to the workers."""
        facts = []
        for dimension, values in ((dimension_a, values_a), (dimension_b, values_b)):
            for value in values:
                facts.append(relation.make_fact({dimension: value}))
        return facts

    def run(
        self,
        relation: SummarizationRelation,
        dimension_a: str,
        values_a: Sequence[object],
        dimension_b: str,
        values_b: Sequence[object],
        prior: float,
    ) -> ConflictStudyResult:
        """Run the study over the 2×2 grid of value combinations."""
        facts = self.build_facts(relation, dimension_a, values_a, dimension_b, values_b)
        result = ConflictStudyResult()
        models = available_models()
        per_model_errors: dict[str, list[float]] = {key: [] for key in models}

        workers = self._pool.workers
        for value_a, value_b in product(values_a, values_b):
            assignments: Mapping[str, object] = {dimension_a: value_a, dimension_b: value_b}
            truth, support = relation.average_target(Scope(dict(assignments)))
            if support == 0:
                continue
            result.combinations += 1

            # Worker answers for this combination.
            answers = []
            for index in range(self._workers_per_combination):
                worker = workers[index % len(workers)]
                answers.append(worker.estimate(facts, assignments, truth, prior))
                result.hits += 1
            worker_answer = float(median(answers))

            # Model predictions: what each expectation model says the user
            # will believe for this combination.
            relevant = [fact.value for fact in facts if fact.covers_row(assignments)]
            all_values = [fact.value for fact in facts]
            predictions = {
                "closest": min(relevant + [prior], key=lambda v: abs(v - truth)),
                "farthest": max(relevant + [prior], key=lambda v: abs(v - truth)),
                "avg_scope": sum(relevant) / len(relevant) if relevant else prior,
                "avg_all": sum(all_values) / len(all_values) if all_values else prior,
            }
            for key, prediction in predictions.items():
                per_model_errors[key].append(abs(prediction - worker_answer))

        result.errors = {
            MODEL_LABELS[key]: float(median(errors)) if errors else 0.0
            for key, errors in per_model_errors.items()
        }
        return result
