"""Simulated user studies.

The paper validates the speech-quality model with Amazon Mechanical
Turk studies (Figures 5-8 and 11).  Crowd workers are unavailable
offline, so this package simulates a worker population whose behaviour
follows the paper's own empirical finding: when facing conflicting
facts, workers' estimates are best predicted by the *closest relevant
value* model (Figure 7), and their quality ratings correlate with the
utility model (Figure 5).  The studies below exercise real speeches
produced by the real algorithms; only the human in the loop is
simulated.
"""

from repro.userstudy.worker import SimulatedWorker, WorkerPool, WorkerBehaviour
from repro.userstudy.ratings import RatingStudy, RatingStudyResult, SpeechCandidate
from repro.userstudy.estimation import EstimationStudy, EstimationResult
from repro.userstudy.conflict import ConflictStudy, ConflictStudyResult
from repro.userstudy.interface_study import InterfaceStudy, InterfaceStudyResult

__all__ = [
    "SimulatedWorker",
    "WorkerPool",
    "WorkerBehaviour",
    "RatingStudy",
    "RatingStudyResult",
    "SpeechCandidate",
    "EstimationStudy",
    "EstimationResult",
    "ConflictStudy",
    "ConflictStudyResult",
    "InterfaceStudy",
    "InterfaceStudyResult",
]
