"""Registry of summarization algorithms by their evaluation names."""

from __future__ import annotations

from typing import Callable

from repro.algorithms.base import Summarizer
from repro.algorithms.exact import ExactSummarizer
from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.lazy_greedy import LazyGreedySummarizer
from repro.algorithms.pruned_greedy import OptimizedGreedySummarizer, PrunedGreedySummarizer
from repro.algorithms.random_baseline import RandomSummarizer
from repro.algorithms.sampling_baseline import SamplingBaselineSummarizer

_FACTORIES: dict[str, Callable[[], Summarizer]] = {
    "E": ExactSummarizer,
    "G-B": GreedySummarizer,
    "G-L": LazyGreedySummarizer,
    "G-P": PrunedGreedySummarizer,
    "G-O": OptimizedGreedySummarizer,
    "SAMPLING": SamplingBaselineSummarizer,
    "RANDOM": RandomSummarizer,
}


def available_summarizers() -> list[str]:
    """Names of all registered summarizers (as used in the paper's plots)."""
    return sorted(_FACTORIES)


def make_summarizer(name: str, **kwargs) -> Summarizer:
    """Instantiate a summarizer by its evaluation name (e.g. "G-O")."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown summarizer {name!r}; available: {available_summarizers()}"
        ) from None
    return factory(**kwargs)
