"""Speech summarization algorithms.

This package contains the paper's primary contribution:

* :class:`ExactSummarizer` — Algorithm 1, guaranteed optimal speeches
  with permutation and bound-based pruning.
* :class:`GreedySummarizer` — Algorithm 2, the (1 − 1/e) approximation
  ("G-B" in the evaluation).
* :class:`PrunedGreedySummarizer` — Algorithm 3 with a fixed, naive
  pruning plan ("G-P").
* :class:`OptimizedGreedySummarizer` — Algorithm 3 + 4 with the
  cost-based pruning optimizer of Section VI-C/D ("G-O").
* :class:`SamplingBaselineSummarizer` — the prior-work, run-time
  sampling baseline compared against in Section VIII-E.
* :class:`RandomSummarizer` — random fact selection, used to produce
  the speech pool for the user studies.
"""

from repro.algorithms.base import SummaryResult, Summarizer, SummarizerStatistics
from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.exact import ExactSummarizer
from repro.algorithms.pruning import FactGroupPruner, PruningPlan
from repro.algorithms.cost_model import PruningCostModel
from repro.algorithms.plan_optimizer import PruningPlanOptimizer, generate_candidate_plans
from repro.algorithms.pruned_greedy import OptimizedGreedySummarizer, PrunedGreedySummarizer
from repro.algorithms.sampling_baseline import SamplingBaselineSummarizer, RangeFact
from repro.algorithms.random_baseline import RandomSummarizer
from repro.algorithms.registry import available_summarizers, make_summarizer

__all__ = [
    "Summarizer",
    "SummaryResult",
    "SummarizerStatistics",
    "GreedySummarizer",
    "ExactSummarizer",
    "FactGroupPruner",
    "PruningPlan",
    "PruningCostModel",
    "PruningPlanOptimizer",
    "generate_candidate_plans",
    "PrunedGreedySummarizer",
    "OptimizedGreedySummarizer",
    "SamplingBaselineSummarizer",
    "RangeFact",
    "RandomSummarizer",
    "available_summarizers",
    "make_summarizer",
]
