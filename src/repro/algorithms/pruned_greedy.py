"""Greedy summarization with fact-group pruning ("G-P" and "G-O").

Both variants run the greedy loop of Algorithm 2 but replace the
compute-all-gains step with Algorithm 3: compute gains for a pruning
source, discard dominated target groups, then compute gains for the
survivors.  They differ only in how the pruning plan is chosen:

* ``PrunedGreedySummarizer`` ("G-P") uses the naive plan — all groups
  participate, in the order Algorithm 4 would consider them.
* ``OptimizedGreedySummarizer`` ("G-O") asks the cost-based optimizer
  (Section VI-C/D) for the cheapest candidate plan, which may be the
  trivial no-pruning plan when bounds are unlikely to pay off.
"""

from __future__ import annotations

from repro.algorithms.base import Summarizer, SummarizerStatistics
from repro.algorithms.cost_model import PruningCostModel, PruningPlan
from repro.algorithms.plan_optimizer import PruningPlanOptimizer
from repro.algorithms.pruning import FactGroupPruner, group_facts
from repro.core.model import Fact, Speech
from repro.core.problem import SummarizationProblem
from repro.relational.catalog import TableStatistics
from repro.relational.planner import CostEstimator


class _PrunedGreedyBase(Summarizer):
    """Shared greedy-with-pruning loop; subclasses pick the plan."""

    def __init__(self, sigma: float = 0.25):
        self._sigma = sigma

    def _choose_plan(
        self,
        optimizer: PruningPlanOptimizer,
        groups,
        fact_counts,
    ) -> PruningPlan:
        raise NotImplementedError

    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        evaluator = problem.evaluator()
        stats = SummarizerStatistics()
        state = evaluator.initial_state()

        by_group = group_facts(problem.candidate_facts)
        fact_counts = {group: len(facts) for group, facts in by_group.items()}
        groups = list(by_group)

        statistics = TableStatistics.from_table(problem.relation.table)
        cost_model = PruningCostModel(
            fact_counts,
            CostEstimator(statistics),
            sigma=self._sigma,
        )
        optimizer = PruningPlanOptimizer(cost_model)
        plan = self._choose_plan(optimizer, groups, fact_counts)

        pruner = FactGroupPruner(by_group, evaluator)
        selected: list[Fact] = []
        excluded: set[Fact] = set()

        for _ in range(problem.max_facts):
            outcome = pruner.compute_gains(state, plan, stats, excluded=excluded)
            best_fact, best_gain = outcome.best_fact()
            if best_fact is None:
                break
            if best_gain <= 0.0 and selected:
                break
            evaluator.apply_fact(best_fact, state)
            selected.append(best_fact)
            excluded.add(best_fact)
            stats.speeches_considered += 1

        return Speech(selected), stats


class PrunedGreedySummarizer(_PrunedGreedyBase):
    """Greedy with the naive (fixed) pruning strategy — "G-P"."""

    name = "G-P"

    def _choose_plan(self, optimizer, groups, fact_counts) -> PruningPlan:
        return optimizer.naive_plan(groups, fact_counts)


class OptimizedGreedySummarizer(_PrunedGreedyBase):
    """Greedy with the cost-optimized pruning strategy — "G-O"."""

    name = "G-O"

    def _choose_plan(self, optimizer, groups, fact_counts) -> PruningPlan:
        return optimizer.choose_plan(groups, fact_counts)
