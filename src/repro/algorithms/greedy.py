"""Greedy speech summarization (Algorithm 2, "G-B").

Starting from the empty speech, the algorithm repeatedly adds the fact
with the largest utility gain, recomputing the per-row user expectation
after every addition.  Because utility is monotone and submodular
(Theorem 1), the result is within a factor (1 − 1/e) of the optimum
(Theorem 3).

The default execution path evaluates all candidate gains through the
vectorized :class:`repro.core.kernel.FactScopeIndex` kernel — one NumPy
pass per iteration instead of one ``incremental_gain`` call per
candidate.  The per-fact path is kept (``use_kernel=False``) as the
reference implementation for parity testing and benchmarking.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Summarizer, SummarizerStatistics
from repro.core.model import Fact, Speech
from repro.core.problem import SummarizationProblem


class GreedySummarizer(Summarizer):
    """Algorithm 2: greedily add the most useful fact in each iteration.

    Parameters
    ----------
    allow_early_stop:
        When True (default), the loop stops as soon as no remaining fact
        improves utility; the paper's guarantee is unaffected because a
        zero-gain fact cannot increase utility.
    use_kernel:
        When True (default), candidate gains are evaluated with the
        batch kernel; when False, the original fact-at-a-time reference
        path runs.  Both select identical speeches.
    """

    name = "G-B"

    def __init__(self, allow_early_stop: bool = True, use_kernel: bool = True):
        self._allow_early_stop = allow_early_stop
        self._use_kernel = use_kernel

    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        if self._use_kernel:
            return self._solve_kernel(problem)
        return self._solve_reference(problem)

    # ------------------------------------------------------------------
    # Vectorized path
    # ------------------------------------------------------------------
    def _solve_kernel(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        evaluator = problem.evaluator()
        stats = SummarizerStatistics()
        state = evaluator.initial_state()

        facts = list(problem.candidate_facts)
        index = evaluator.fact_scope_index(facts)
        active = np.ones(len(facts), dtype=bool)
        selected: list[Fact] = []

        for _ in range(problem.max_facts):
            if not active.any():
                break
            # Algorithm 2, Line 7 — all candidate gains in one pass.
            gains = evaluator.batch_incremental_gains(index, state)
            stats.fact_evaluations += int(active.sum())
            gains[~active] = -np.inf
            # Gains are clipped at zero, so argmax replicates the
            # reference loop exactly: first index among maximal gains,
            # falling back to the first remaining fact when all are zero.
            best = int(np.argmax(gains))
            best_gain = float(gains[best])
            if best_gain <= 0.0 and self._allow_early_stop and selected:
                break
            # Algorithm 2, Lines 9-11: select the fact and update expectations.
            index.apply_fact(best, state)
            selected.append(facts[best])
            active[best] = False
            stats.speeches_considered += 1

        return Speech(selected), stats

    # ------------------------------------------------------------------
    # Reference per-fact path (parity baseline)
    # ------------------------------------------------------------------
    def _solve_reference(
        self, problem: SummarizationProblem
    ) -> tuple[Speech, SummarizerStatistics]:
        evaluator = problem.evaluator()
        stats = SummarizerStatistics()
        state = evaluator.initial_state()

        remaining = list(problem.candidate_facts)
        selected: list[Fact] = []

        for _ in range(problem.max_facts):
            if not remaining:
                break
            best_fact: Fact | None = None
            best_gain = 0.0
            best_pos = -1
            # Algorithm 2, Line 7: utility gain of every candidate fact
            # against the current expectation state.
            for pos, fact in enumerate(remaining):
                gain = evaluator.incremental_gain(fact, state)
                stats.fact_evaluations += 1
                if gain > best_gain or (best_fact is None and gain == best_gain == 0.0 and pos == 0):
                    best_fact = fact
                    best_gain = gain
                    best_pos = pos
            if best_fact is None:
                break
            if best_gain <= 0.0 and self._allow_early_stop and selected:
                break
            # Algorithm 2, Lines 9-11: select the fact and update expectations.
            evaluator.apply_fact(best_fact, state)
            selected.append(best_fact)
            remaining.pop(best_pos)
            stats.speeches_considered += 1

        return Speech(selected), stats
