"""Common interface and result types for summarization algorithms."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.core.model import Speech
from repro.core.problem import SummarizationProblem


@dataclass
class SummarizerStatistics:
    """Counters describing the work an algorithm performed.

    Attributes
    ----------
    elapsed_seconds:
        Wall-clock time spent in :meth:`Summarizer.summarize`.
    fact_evaluations:
        Number of (fact, speech-state) utility/gain evaluations.
    speeches_considered:
        Number of (partial) speeches the algorithm materialised.
    speeches_pruned:
        Number of partial speeches discarded by pruning rules
        (exact algorithm).
    groups_pruned:
        Number of fact groups discarded by group-level pruning
        (Algorithm 3).
    bound_evaluations:
        Number of per-group bound computations (Algorithm 3, Line 15).
    """

    elapsed_seconds: float = 0.0
    fact_evaluations: int = 0
    speeches_considered: int = 0
    speeches_pruned: int = 0
    groups_pruned: int = 0
    bound_evaluations: int = 0

    def merge(self, other: "SummarizerStatistics") -> "SummarizerStatistics":
        """Combine two statistics objects (used when batching problems)."""
        return SummarizerStatistics(
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            fact_evaluations=self.fact_evaluations + other.fact_evaluations,
            speeches_considered=self.speeches_considered + other.speeches_considered,
            speeches_pruned=self.speeches_pruned + other.speeches_pruned,
            groups_pruned=self.groups_pruned + other.groups_pruned,
            bound_evaluations=self.bound_evaluations + other.bound_evaluations,
        )


@dataclass
class SummaryResult:
    """The outcome of summarizing one problem instance.

    Attributes
    ----------
    speech:
        The selected speech (set of facts).
    utility:
        Absolute utility U(F*) of the selected speech.
    scaled_utility:
        Utility divided by the prior deviation (in [0, 1] for the
        closest-relevant-value model).
    algorithm:
        Name of the algorithm that produced the result.
    statistics:
        Work counters.
    problem_label:
        Copied from the problem, identifying which query it answers.
    """

    speech: Speech
    utility: float
    scaled_utility: float
    algorithm: str
    statistics: SummarizerStatistics = field(default_factory=SummarizerStatistics)
    problem_label: str = ""


class Summarizer(abc.ABC):
    """Base class for all summarization algorithms."""

    #: Short name used in experiment reports (e.g. "E", "G-B", "G-O").
    name: str = "abstract"

    #: Whether repeated ``summarize`` calls are independent of call
    #: order (no mutable state carried across problems).  Parallel
    #: pre-processing relies on this: only deterministic summarizers
    #: can be sharded across workers with output identical to a serial
    #: run.  Algorithms drawing from a shared RNG stream must set this
    #: to False.
    deterministic: bool = True

    @abc.abstractmethod
    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        """Select a speech for ``problem``; return it plus work counters."""

    def summarize(self, problem: SummarizationProblem) -> SummaryResult:
        """Solve ``problem`` and package the result.

        Timing and final utility evaluation are handled here so all
        algorithms report comparable numbers.
        """
        start = time.perf_counter()
        speech, stats = self._solve(problem)
        stats.elapsed_seconds = time.perf_counter() - start

        evaluator = problem.evaluator()
        utility = evaluator.utility(speech)
        scaled = evaluator.scaled_utility(speech)
        return SummaryResult(
            speech=speech,
            utility=utility,
            scaled_utility=scaled,
            algorithm=self.name,
            statistics=stats,
            problem_label=problem.label,
        )
