"""Lazy greedy speech summarization ("G-L", CELF-style).

The greedy loop of Algorithm 2 re-evaluates *every* candidate fact in
every iteration even though most gains barely change.  Because utility
is submodular under the closest-relevant-value model (Theorem 1), a
fact's gain can only shrink as the speech grows: applying a fact only
ever lowers per-row deviation, and the gain

    gain(f, state) = Σ_r max(error_r − |f.value − v_r|, 0)

is monotone in the ``error`` vector.  A gain computed against an older
(larger-error) state is therefore a valid *upper bound* on the current
gain.  The lazy variant (Minoux 1978; popularised as CELF by Leskovec
et al. for influence maximization) keeps candidates in a max-heap keyed
by such stale bounds and re-evaluates only the top entry: when a freshly
re-evaluated fact stays on top of the heap, it must be the true argmax —
every other candidate's true gain is below its own (stale) bound, which
is below the top.  Selections are identical to eager greedy (ties are
broken by candidate index in both), typically at a small fraction of the
gain evaluations.
"""

from __future__ import annotations

import heapq

from repro.algorithms.base import Summarizer, SummarizerStatistics
from repro.core.model import Fact, Speech
from repro.core.problem import SummarizationProblem


class LazyGreedySummarizer(Summarizer):
    """Algorithm 2 with lazy (stale-bound) candidate evaluation.

    Parameters
    ----------
    allow_early_stop:
        When True (default), stop as soon as the best available gain is
        zero (after at least one fact was selected), matching
        :class:`~repro.algorithms.greedy.GreedySummarizer`.
    """

    name = "G-L"

    def __init__(self, allow_early_stop: bool = True):
        self._allow_early_stop = allow_early_stop

    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        evaluator = problem.evaluator()
        stats = SummarizerStatistics()
        state = evaluator.initial_state()

        facts = list(problem.candidate_facts)
        index = evaluator.fact_scope_index(facts)

        # Round 0: exact gains for everyone, in one batch pass.
        gains = evaluator.batch_incremental_gains(index, state)
        stats.fact_evaluations += len(facts)
        # Heap entries (−gain, fact_id): ties pop the smallest id first,
        # matching the eager loop's first-maximum tie-breaking.
        heap: list[tuple[float, int]] = [(-float(g), i) for i, g in enumerate(gains)]
        heapq.heapify(heap)
        fresh_round = [0] * len(facts)

        selected: list[Fact] = []
        while heap and len(selected) < problem.max_facts:
            current_round = len(selected)
            neg_bound, fact_id = heapq.heappop(heap)
            if fresh_round[fact_id] == current_round:
                # Bound is exact for the current state: this is the argmax.
                best_gain = -neg_bound
                if best_gain <= 0.0 and self._allow_early_stop and selected:
                    break
                index.apply_fact(fact_id, state)
                selected.append(facts[fact_id])
                stats.speeches_considered += 1
                continue
            # Stale bound: re-evaluate just this fact and reinsert.
            gain = index.gain_of(fact_id, state.error)
            stats.fact_evaluations += 1
            fresh_round[fact_id] = current_round
            heapq.heappush(heap, (-gain, fact_id))

        return Speech(selected), stats
