"""Pruning-plan generation and selection (Section VI-D, Algorithm 4).

Algorithm 4 generates a restricted set of candidate plans: sources are
prefixes of the groups sorted by ascending fact count (small groups
have higher expected per-fact utility), and targets are picked greedily
by the heuristic H(t, S, L) = Pr(P_t) · |{l ∈ L : t ⊆ l}| — the
expected number of groups removed when ``t`` is used as a target.
``OPT_PRUNE`` then returns the candidate with minimal estimated cost.
The trivial no-pruning plan is always a candidate, so the optimizer can
fall back to plain greedy when pruning is unlikely to pay off.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algorithms.cost_model import PruningCostModel, PruningPlan
from repro.facts.groups import FactGroup


def generate_candidate_plans(
    groups: Sequence[FactGroup],
    fact_counts: Mapping[FactGroup, int],
    cost_model: PruningCostModel,
    max_source_prefix: int | None = None,
) -> list[PruningPlan]:
    """Generate candidate pruning plans (Algorithm 4).

    Parameters
    ----------
    groups:
        All fact groups with candidate facts.
    fact_counts:
        Number of facts per group, used to order source prefixes.
    cost_model:
        Supplies Pr(P_t) for the target-selection heuristic.
    max_source_prefix:
        Optional cap on the number of source prefixes considered
        (keeps optimization overhead bounded for many groups).
    """
    plans: list[PruningPlan] = [PruningPlan((), ())]
    ordered = sorted(groups, key=lambda g: (fact_counts.get(g, 1), g.dimensions))
    if len(ordered) < 2:
        return plans

    prefix_limit = len(ordered) - 1
    if max_source_prefix is not None:
        prefix_limit = min(prefix_limit, max_source_prefix)

    for prefix_length in range(1, prefix_limit + 1):
        sources = tuple(ordered[:prefix_length])
        remaining = set(ordered[prefix_length:])
        targets: list[FactGroup] = []
        while remaining:
            best_target = max(
                remaining,
                key=lambda t: (_target_value(t, sources, remaining, cost_model), t.dimensions),
            )
            targets.append(best_target)
            plans.append(PruningPlan(sources, tuple(targets)))
            remaining = {
                g for g in remaining if not g.is_specialization_of(best_target)
            }
    return plans


def _target_value(
    target: FactGroup,
    sources: Sequence[FactGroup],
    remaining: set[FactGroup],
    cost_model: PruningCostModel,
) -> float:
    """H(t, S, L): expected number of groups removed by target ``t``."""
    prune_probability = cost_model.target_prune_probability(target, sources)
    covered = sum(1 for g in remaining if g.is_specialization_of(target))
    return prune_probability * covered


class PruningPlanOptimizer:
    """OPT_PRUNE: select the minimum-cost plan among Algorithm 4's candidates."""

    def __init__(self, cost_model: PruningCostModel, max_source_prefix: int | None = 4):
        self._cost_model = cost_model
        self._max_source_prefix = max_source_prefix

    def choose_plan(
        self,
        groups: Sequence[FactGroup],
        fact_counts: Mapping[FactGroup, int],
    ) -> PruningPlan:
        """Return the candidate plan with minimal estimated cost."""
        candidates = generate_candidate_plans(
            groups, fact_counts, self._cost_model, self._max_source_prefix
        )
        return min(candidates, key=lambda plan: self._cost_model.plan_cost(plan, groups))

    def naive_plan(
        self,
        groups: Sequence[FactGroup],
        fact_counts: Mapping[FactGroup, int],
    ) -> PruningPlan:
        """The simple strategy used by the "G-P" variant.

        It uses all fact groups for pruning in the order Algorithm 4
        would consider them: the smallest group (fewest facts) is the
        single pruning source, every other group is a pruning target,
        ordered by the target-selection heuristic without discarding
        specializations.
        """
        if len(groups) < 2:
            return PruningPlan((), ())
        ordered = sorted(groups, key=lambda g: (fact_counts.get(g, 1), g.dimensions))
        sources = (ordered[0],)
        rest = ordered[1:]
        rest_set = set(rest)
        targets = sorted(
            rest,
            key=lambda t: (-_target_value(t, sources, rest_set, self._cost_model), t.dimensions),
        )
        return PruningPlan(sources, tuple(targets))
