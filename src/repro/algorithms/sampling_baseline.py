"""Run-time, sampling-based vocalization baseline (Section VIII-E).

The prior data-vocalization approach the paper compares against
([25], [28]) selects speech facts at *query time* by evaluating
candidate facts on progressively larger row samples.  Because sampling
estimates are imprecise, the baseline reports value *ranges* instead of
point averages, and it can start speaking as soon as the first fact has
been chosen (latency < total processing time).

This module reproduces those observable characteristics:

* facts are chosen greedily from sampled utility estimates, refined
  over several sampling rounds;
* the output consists of :class:`RangeFact` objects carrying a
  confidence interval for the typical value;
* the result records both the first-sentence latency and the total
  processing time, which Figure 10 compares against our pre-processing
  approach.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Summarizer, SummarizerStatistics
from repro.core.model import Fact, Scope, Speech
from repro.core.problem import SummarizationProblem
from repro.core.utility import UtilityEvaluator


@dataclass(frozen=True)
class RangeFact:
    """A fact whose typical value is reported as a range.

    ``low``/``high`` bound the estimate obtained from sampling;
    ``point`` is the sampled mean.
    """

    scope: Scope
    low: float
    high: float
    point: float
    support: int

    def to_fact(self) -> Fact:
        """Collapse the range to a point fact (for utility evaluation)."""
        return Fact(scope=self.scope, value=self.point, support=self.support)


@dataclass
class SamplingSummary:
    """Full result of the sampling baseline for one query.

    Attributes
    ----------
    range_facts:
        The selected facts with their sampled value ranges.
    first_sentence_latency:
        Seconds until the first fact was available (the system can start
        speaking at this point).
    total_time:
        Seconds until the whole speech was finalised.
    sample_rows:
        Total number of sampled row visits.
    """

    range_facts: list[RangeFact] = field(default_factory=list)
    selected_facts: list[Fact] = field(default_factory=list)
    first_sentence_latency: float = 0.0
    total_time: float = 0.0
    sample_rows: int = 0

    def speech(self) -> Speech:
        """The selected facts as a point-valued speech (sampled means)."""
        return Speech(rf.to_fact() for rf in self.range_facts)

    def candidate_speech(self) -> Speech:
        """The selected candidate facts with their exact typical values.

        Useful for scoring the baseline's fact *selection* under the
        utility model (the ranges it reports cannot be scored directly).
        """
        return Speech(self.selected_facts)

    @property
    def mean_relative_range_width(self) -> float:
        """Average (high − low) / max(|point|, 1) over the reported facts."""
        if not self.range_facts:
            return 0.0
        widths = [
            (rf.high - rf.low) / max(abs(rf.point), 1e-9)
            for rf in self.range_facts
        ]
        return float(sum(widths) / len(widths))


class SamplingBaselineSummarizer(Summarizer):
    """Sampling-based run-time speech construction.

    Parameters
    ----------
    sample_fraction:
        Fraction of the relation sampled per refinement round.
    rounds:
        Number of sampling rounds used to refine value estimates; each
        round enlarges the accumulated sample.
    confidence_width:
        Multiplier of the standard error used for the reported ranges
        (2.0 roughly corresponds to a 95% interval).
    seed:
        Seed for the sampling RNG (deterministic experiments).
    """

    name = "SAMPLING"

    def __init__(
        self,
        sample_fraction: float = 0.1,
        rounds: int = 3,
        confidence_width: float = 2.0,
        seed: int = 7,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if rounds < 1:
            raise ValueError("rounds must be at least 1")
        self._sample_fraction = sample_fraction
        self._rounds = rounds
        self._confidence_width = confidence_width
        self._seed = seed

    # ------------------------------------------------------------------
    # Summarizer interface (point-valued speech)
    # ------------------------------------------------------------------
    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        summary, stats = self._vocalize_with_stats(problem)
        return summary.speech(), stats

    # ------------------------------------------------------------------
    # Full baseline behaviour (ranges + timing)
    # ------------------------------------------------------------------
    def vocalize(self, problem: SummarizationProblem) -> SamplingSummary:
        """Run the baseline and return ranges plus latency measurements."""
        summary, _ = self._vocalize_with_stats(problem)
        return summary

    def _vocalize_with_stats(
        self, problem: SummarizationProblem
    ) -> tuple[SamplingSummary, SummarizerStatistics]:
        start = time.perf_counter()
        stats = SummarizerStatistics()
        summary = SamplingSummary()
        evaluator = problem.evaluator()
        relation = problem.relation
        rng = np.random.default_rng(self._seed)

        n = relation.num_rows
        sample_size = max(1, int(round(self._sample_fraction * n)))
        sampled_indices: np.ndarray = np.empty(0, dtype=int)

        state = evaluator.initial_state()
        selected: set[Fact] = set()

        for position in range(problem.max_facts):
            # Each fact selection refines the accumulated sample.
            for _ in range(self._rounds):
                fresh = rng.choice(n, size=sample_size, replace=True)
                sampled_indices = np.concatenate([sampled_indices, fresh])
                summary.sample_rows += sample_size

            best_fact, best_gain = self._best_fact_on_sample(
                problem, evaluator, state, sampled_indices, selected, stats
            )
            if best_fact is None or (best_gain <= 0.0 and selected):
                break
            evaluator.apply_fact(best_fact, state)
            selected.add(best_fact)
            summary.selected_facts.append(best_fact)
            summary.range_facts.append(
                self._range_fact(relation, best_fact, sampled_indices)
            )
            if position == 0:
                summary.first_sentence_latency = time.perf_counter() - start

        summary.total_time = time.perf_counter() - start
        if not summary.range_facts:
            summary.first_sentence_latency = summary.total_time
        stats.elapsed_seconds = summary.total_time
        return summary, stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _best_fact_on_sample(
        self,
        problem: SummarizationProblem,
        evaluator: UtilityEvaluator,
        state,
        sampled_indices: np.ndarray,
        selected: set[Fact],
        stats: SummarizerStatistics,
    ) -> tuple[Fact | None, float]:
        """Greedy fact choice using gains estimated on the sample only."""
        relation = problem.relation
        truth = relation.target_values
        sample_set = sampled_indices
        best_fact: Fact | None = None
        best_gain = float("-inf")
        for fact in problem.candidate_facts:
            if fact in selected:
                continue
            scope_rows = evaluator.scope_indices(fact.scope)
            if scope_rows.size == 0:
                continue
            in_sample = np.intersect1d(scope_rows, sample_set, assume_unique=False)
            stats.fact_evaluations += 1
            if in_sample.size == 0:
                continue
            fact_error = np.abs(fact.value - truth[in_sample])
            gain = float(np.maximum(state.error[in_sample] - fact_error, 0.0).sum())
            # Scale the sampled gain up to the full relation.
            gain *= scope_rows.size / in_sample.size
            if gain > best_gain:
                best_fact, best_gain = fact, gain
        if best_fact is None:
            return None, 0.0
        return best_fact, best_gain

    def _range_fact(self, relation, fact: Fact, sampled_indices: np.ndarray) -> RangeFact:
        """Build the reported value range from the sampled rows in scope."""
        scope_rows = relation.scope_row_indices(fact.scope)
        in_sample = np.intersect1d(scope_rows, sampled_indices)
        if in_sample.size == 0:
            in_sample = scope_rows
        values = relation.target_values[in_sample]
        mean = float(values.mean())
        if values.size > 1:
            stderr = float(values.std(ddof=1) / np.sqrt(values.size))
        else:
            stderr = 0.0
        width = self._confidence_width * stderr
        return RangeFact(
            scope=fact.scope,
            low=mean - width,
            high=mean + width,
            point=mean,
            support=int(scope_rows.size),
        )
