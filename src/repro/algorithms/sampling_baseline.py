"""Run-time, sampling-based vocalization baseline (Section VIII-E).

The prior data-vocalization approach the paper compares against
([25], [28]) selects speech facts at *query time* by evaluating
candidate facts on progressively larger row samples.  Because sampling
estimates are imprecise, the baseline reports value *ranges* instead of
point averages, and it can start speaking as soon as the first fact has
been chosen (latency < total processing time).

This module reproduces those observable characteristics:

* facts are chosen greedily from sampled utility estimates, refined
  over several sampling rounds;
* the output consists of :class:`RangeFact` objects carrying a
  confidence interval for the typical value;
* the result records both the first-sentence latency and the total
  processing time, which Figure 10 compares against our pre-processing
  approach.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Summarizer, SummarizerStatistics
from repro.core.kernel import FactScopeIndex
from repro.core.model import Fact, Scope, Speech
from repro.core.problem import SummarizationProblem


@dataclass(frozen=True)
class RangeFact:
    """A fact whose typical value is reported as a range.

    ``low``/``high`` bound the estimate obtained from sampling;
    ``point`` is the sampled mean.
    """

    scope: Scope
    low: float
    high: float
    point: float
    support: int

    def to_fact(self) -> Fact:
        """Collapse the range to a point fact (for utility evaluation)."""
        return Fact(scope=self.scope, value=self.point, support=self.support)


@dataclass
class SamplingSummary:
    """Full result of the sampling baseline for one query.

    Attributes
    ----------
    range_facts:
        The selected facts with their sampled value ranges.
    first_sentence_latency:
        Seconds until the first fact was available (the system can start
        speaking at this point).
    total_time:
        Seconds until the whole speech was finalised.
    sample_rows:
        Total number of sampled row visits.
    """

    range_facts: list[RangeFact] = field(default_factory=list)
    selected_facts: list[Fact] = field(default_factory=list)
    first_sentence_latency: float = 0.0
    total_time: float = 0.0
    sample_rows: int = 0

    def speech(self) -> Speech:
        """The selected facts as a point-valued speech (sampled means)."""
        return Speech(rf.to_fact() for rf in self.range_facts)

    def candidate_speech(self) -> Speech:
        """The selected candidate facts with their exact typical values.

        Useful for scoring the baseline's fact *selection* under the
        utility model (the ranges it reports cannot be scored directly).
        """
        return Speech(self.selected_facts)

    @property
    def mean_relative_range_width(self) -> float:
        """Average (high − low) / max(|point|, 1) over the reported facts."""
        if not self.range_facts:
            return 0.0
        widths = [
            (rf.high - rf.low) / max(abs(rf.point), 1e-9)
            for rf in self.range_facts
        ]
        return float(sum(widths) / len(widths))


class SamplingBaselineSummarizer(Summarizer):
    """Sampling-based run-time speech construction.

    Parameters
    ----------
    sample_fraction:
        Fraction of the relation sampled per refinement round.
    rounds:
        Number of sampling rounds used to refine value estimates; each
        round enlarges the accumulated sample.
    confidence_width:
        Multiplier of the standard error used for the reported ranges
        (2.0 roughly corresponds to a 95% interval).
    seed:
        Seed for the sampling RNG (deterministic experiments).
    """

    name = "SAMPLING"

    def __init__(
        self,
        sample_fraction: float = 0.1,
        rounds: int = 3,
        confidence_width: float = 2.0,
        seed: int = 7,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if rounds < 1:
            raise ValueError("rounds must be at least 1")
        self._sample_fraction = sample_fraction
        self._rounds = rounds
        self._confidence_width = confidence_width
        self._seed = seed

    # ------------------------------------------------------------------
    # Summarizer interface (point-valued speech)
    # ------------------------------------------------------------------
    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        summary, stats = self._vocalize_with_stats(problem)
        return summary.speech(), stats

    # ------------------------------------------------------------------
    # Full baseline behaviour (ranges + timing)
    # ------------------------------------------------------------------
    def vocalize(self, problem: SummarizationProblem) -> SamplingSummary:
        """Run the baseline and return ranges plus latency measurements."""
        summary, _ = self._vocalize_with_stats(problem)
        return summary

    def _vocalize_with_stats(
        self, problem: SummarizationProblem
    ) -> tuple[SamplingSummary, SummarizerStatistics]:
        start = time.perf_counter()
        stats = SummarizerStatistics()
        summary = SamplingSummary()
        evaluator = problem.evaluator()
        relation = problem.relation
        rng = np.random.default_rng(self._seed)

        n = relation.num_rows
        sample_size = max(1, int(round(self._sample_fraction * n)))
        sampled_indices: np.ndarray = np.empty(0, dtype=int)

        state = evaluator.initial_state()
        facts = list(problem.candidate_facts)
        index = evaluator.fact_scope_index(facts)
        active = np.ones(len(facts), dtype=bool)

        for position in range(problem.max_facts):
            # Each fact selection refines the accumulated sample.
            for _ in range(self._rounds):
                fresh = rng.choice(n, size=sample_size, replace=True)
                sampled_indices = np.concatenate([sampled_indices, fresh])
                summary.sample_rows += sample_size

            best_id, best_gain = self._best_fact_on_sample(
                index, state, sampled_indices, active, n, stats
            )
            if best_id is None or (best_gain <= 0.0 and summary.selected_facts):
                break
            best_fact = facts[best_id]
            index.apply_fact(best_id, state)
            # Equal facts (same scope and value) are interchangeable;
            # deactivate them all, mirroring the set-based dedup.
            for j, fact in enumerate(facts):
                if fact == best_fact:
                    active[j] = False
            summary.selected_facts.append(best_fact)
            summary.range_facts.append(
                self._range_fact(relation, best_fact, sampled_indices)
            )
            if position == 0:
                summary.first_sentence_latency = time.perf_counter() - start

        summary.total_time = time.perf_counter() - start
        if not summary.range_facts:
            summary.first_sentence_latency = summary.total_time
        stats.elapsed_seconds = summary.total_time
        return summary, stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _best_fact_on_sample(
        self,
        index: FactScopeIndex,
        state,
        sampled_indices: np.ndarray,
        active: np.ndarray,
        num_rows: int,
        stats: SummarizerStatistics,
    ) -> tuple[int | None, float]:
        """Greedy fact choice using gains estimated on the sample only.

        All candidate estimates come from one masked kernel pass; gains
        are scaled from the in-sample scope rows to the full scope.
        """
        row_mask = np.zeros(num_rows, dtype=bool)
        row_mask[sampled_indices] = True
        gains, counts = index.sampled_gains(state.error, row_mask)

        evaluable = active & (index.supports > 0)
        stats.fact_evaluations += int(evaluable.sum())
        evaluable &= counts > 0
        if not evaluable.any():
            return None, 0.0
        # Scale the sampled gain up to the full relation, with the ratio
        # computed first — the same rounding order as the historical
        # per-fact loop.  (Sampled gains themselves are summed by the
        # kernel's bincount, whose accumulation order can still flip
        # exact ties against the pre-vectorized implementation; sampled
        # estimates carry no ordering guarantee on ties.)
        scaled = np.full(index.num_facts, -np.inf)
        scaled[evaluable] = gains[evaluable] * (
            index.supports[evaluable] / counts[evaluable]
        )
        best_id = int(np.argmax(scaled))
        return best_id, float(scaled[best_id])

    def _range_fact(self, relation, fact: Fact, sampled_indices: np.ndarray) -> RangeFact:
        """Build the reported value range from the sampled rows in scope."""
        scope_rows = relation.scope_row_indices(fact.scope)
        in_sample = np.intersect1d(scope_rows, sampled_indices)
        if in_sample.size == 0:
            in_sample = scope_rows
        values = relation.target_values[in_sample]
        mean = float(values.mean())
        if values.size > 1:
            stderr = float(values.std(ddof=1) / np.sqrt(values.size))
        else:
            stderr = 0.0
        width = self._confidence_width * stderr
        return RangeFact(
            scope=fact.scope,
            low=mean - width,
            high=mean + width,
            point=mean,
            support=int(scope_rows.size),
        )
