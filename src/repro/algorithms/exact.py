"""Exhaustive speech summarization with pruning (Algorithm 1, "E").

The exact algorithm enumerates fact combinations iteratively: starting
from single facts, each iteration extends the surviving partial
speeches by one fact.  Two pruning rules keep the enumeration tractable
(Section IV-B):

1. *Permutation pruning* — facts must be appended in non-increasing
   order of single-fact utility (ties broken by candidate index), so
   each fact set is enumerated exactly once.
2. *Bound pruning* — a partial speech is discarded when an upper bound
   on the utility of all of its completions falls below a known lower
   bound ``b`` on the optimal utility (obtained from a cheap heuristic,
   by default the greedy algorithm).

The upper bound follows Lemma 1: after choosing the i-th fact with
single-fact utility ``u_i``, the completed speech's utility is at most
``U_i + (m − i)·u_i`` where ``U_i`` sums single-fact utilities of the
chosen facts (itself an upper bound by submodularity, Lemma 2).  The
pruning test therefore discards an expansion by fact ``f`` when
``S.U + (m − i + 1)·f.u < b``.  (The paper's prose states the remaining
count as ``m − i − 1``; the worked Example 6 uses ``m − i + 1``, which
is the value consistent with Lemma 1, so that is what we implement.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import Summarizer, SummarizerStatistics
from repro.algorithms.greedy import GreedySummarizer
from repro.core.model import Speech
from repro.core.problem import SummarizationProblem


@dataclass
class _PartialSpeech:
    """A partial speech during exhaustive enumeration.

    ``fact_indices`` indexes into the utility-sorted candidate list;
    ``utility_bound`` is the sum of single-fact utilities (an upper
    bound on true utility by submodularity); ``last_utility`` is the
    single-fact utility of the most recently added fact.
    """

    fact_indices: tuple[int, ...]
    utility_bound: float
    last_utility: float


class ExactSummarizer(Summarizer):
    """Algorithm 1: guaranteed optimal speech summaries.

    Parameters
    ----------
    lower_bound_summarizer:
        Heuristic used to obtain the lower bound ``b`` on optimal
        utility; defaults to the greedy algorithm.
    use_bound_pruning:
        Disable to measure the effect of bound pruning (ablation).
        Permutation pruning is structural (facts are enumerated in a
        canonical utility-sorted index order) and cannot be disabled
        without enumerating redundant permutations.
    max_partial_speeches:
        Safety valve: abort with a :class:`RuntimeError` when the number
        of surviving partial speeches exceeds this limit (the paper uses
        a 48-hour timeout instead).
    """

    name = "E"

    def __init__(
        self,
        lower_bound_summarizer: Summarizer | None = None,
        use_bound_pruning: bool = True,
        max_partial_speeches: int | None = 2_000_000,
    ):
        self._lower_bound_summarizer = lower_bound_summarizer or GreedySummarizer()
        self._use_bound_pruning = use_bound_pruning
        self._max_partial = max_partial_speeches

    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        evaluator = problem.evaluator()
        stats = SummarizerStatistics()

        # Lower bound b on the optimal utility from the heuristic.
        heuristic_result = self._lower_bound_summarizer.summarize(problem)
        lower_bound = heuristic_result.utility
        best_speech = heuristic_result.speech
        best_utility = lower_bound
        stats.fact_evaluations += heuristic_result.statistics.fact_evaluations

        # Sort candidates by decreasing single-fact utility; the sorted
        # order realises the permutation-pruning condition S.UP >= F.U.
        # Utilities come from the batch kernel — one pass over all facts.
        facts = list(problem.candidate_facts)
        index = evaluator.fact_scope_index(facts)
        single_utilities = [float(u) for u in evaluator.batch_single_fact_utilities(index)]
        stats.fact_evaluations += len(facts)
        order = sorted(range(len(facts)), key=lambda i: -single_utilities[i])
        sorted_facts = [facts[i] for i in order]
        sorted_utilities = [single_utilities[i] for i in order]

        m = min(problem.max_facts, len(sorted_facts))
        if m == 0:
            return Speech(), stats

        # Line 6: single-fact speeches (their bound equals exact utility).
        frontier = [
            _PartialSpeech((i,), sorted_utilities[i], sorted_utilities[i])
            for i in range(len(sorted_facts))
        ]
        frontier = self._prune(frontier, sorted_utilities, m, 1, lower_bound, stats)
        stats.speeches_considered += len(frontier)

        # Lines 8-11: iterative expansion with pruning.
        for i in range(2, m + 1):
            expanded: list[_PartialSpeech] = []
            for partial in frontier:
                last_index = partial.fact_indices[-1]
                # Candidates appear after the last index in the sorted
                # order; this enforces both the utility ordering and a
                # canonical order among equal-utility facts.
                for j in range(last_index + 1, len(sorted_facts)):
                    expanded.append(
                        _PartialSpeech(
                            partial.fact_indices + (j,),
                            partial.utility_bound + sorted_utilities[j],
                            sorted_utilities[j],
                        )
                    )
            frontier = self._prune(expanded, sorted_utilities, m, i, lower_bound, stats)
            stats.speeches_considered += len(frontier)
            if self._max_partial is not None and len(frontier) > self._max_partial:
                raise RuntimeError(
                    f"exact summarizer exceeded {self._max_partial} partial speeches; "
                    "reduce the candidate fact set or the speech length"
                )
            if not frontier:
                break

        # Lines 13-15: exact utility of the surviving speeches.
        for partial in frontier:
            speech = Speech(sorted_facts[j] for j in partial.fact_indices)
            utility = evaluator.utility(speech)
            stats.fact_evaluations += len(partial.fact_indices)
            if utility > best_utility:
                best_utility = utility
                best_speech = speech
        return best_speech, stats

    def _prune(
        self,
        partials: list[_PartialSpeech],
        sorted_utilities: list[float],
        m: int,
        iteration: int,
        lower_bound: float,
        stats: SummarizerStatistics,
    ) -> list[_PartialSpeech]:
        """Apply the bound-pruning condition to freshly expanded speeches."""
        if not self._use_bound_pruning:
            return partials
        remaining = m - iteration + 1
        survivors: list[_PartialSpeech] = []
        for partial in partials:
            # Upper bound on any completion: already-accumulated bound for
            # the first (iteration - 1) facts plus `remaining` more facts,
            # each worth at most the last fact's single-fact utility.
            previous_bound = partial.utility_bound - partial.last_utility
            completion_bound = previous_bound + remaining * partial.last_utility
            if completion_bound < lower_bound:
                stats.speeches_pruned += 1
                continue
            survivors.append(partial)
        return survivors
