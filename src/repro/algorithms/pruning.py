"""Fact-group pruning for greedy speech construction (Algorithm 3).

In every greedy iteration the fact with maximal utility gain must be
identified.  Computing the gain of every candidate fact requires the
expensive fact/data join; Algorithm 3 avoids part of that work by
first computing gains only for *source* groups and then discarding
*target* groups (plus their specializations) whose per-scope deviation
bound is dominated by the best source gain.  The globally best fact is
never discarded, so the greedy guarantee is preserved.

Gain evaluation runs through the vectorized
:class:`repro.core.kernel.FactScopeIndex`: the pruner builds one CSR
index over all candidates up front and evaluates each phase (sources,
then surviving groups) as a single masked batch pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.algorithms.base import SummarizerStatistics
from repro.algorithms.cost_model import PruningPlan
from repro.core.model import Fact
from repro.core.utility import ExpectationState, UtilityEvaluator
from repro.facts.groups import FactGroup


def group_of_fact(fact: Fact) -> FactGroup:
    """The fact group a fact belongs to (the dimensions its scope restricts)."""
    return FactGroup(fact.scope.columns)


def group_facts(facts: Sequence[Fact]) -> dict[FactGroup, list[Fact]]:
    """Partition candidate facts into fact groups."""
    by_group: dict[FactGroup, list[Fact]] = {}
    for fact in facts:
        by_group.setdefault(group_of_fact(fact), []).append(fact)
    return by_group


@dataclass
class PruningOutcome:
    """Result of one pruned gain-computation pass.

    ``gains`` holds the utility gain of every fact whose gain was
    actually computed (facts of pruned groups are absent);
    ``pruned_groups`` lists the discarded groups.
    """

    gains: dict[Fact, float] = field(default_factory=dict)
    pruned_groups: list[FactGroup] = field(default_factory=list)

    def best_fact(self) -> tuple[Fact | None, float]:
        """The computed fact with maximal gain (None when no gains exist)."""
        best: Fact | None = None
        best_gain = float("-inf")
        for fact, gain in self.gains.items():
            if gain > best_gain:
                best, best_gain = fact, gain
        if best is None:
            return None, 0.0
        return best, best_gain


class FactGroupPruner:
    """Executes Algorithm 3 for one greedy iteration.

    Parameters
    ----------
    by_group:
        Candidate facts partitioned into fact groups.
    evaluator:
        Utility evaluator for the problem's relation.
    """

    def __init__(self, by_group: Mapping[FactGroup, Sequence[Fact]], evaluator: UtilityEvaluator):
        self._by_group = {group: list(facts) for group, facts in by_group.items()}
        self._evaluator = evaluator
        # Flatten the groups into one CSR scope index; remember which
        # fact ids belong to which group for masked batch evaluation.
        self._facts: list[Fact] = []
        self._ids_by_group: dict[FactGroup, np.ndarray] = {}
        for group, facts in self._by_group.items():
            start = len(self._facts)
            self._facts.extend(facts)
            self._ids_by_group[group] = np.arange(start, len(self._facts))
        self._index = evaluator.fact_scope_index(self._facts)

    @property
    def groups(self) -> list[FactGroup]:
        """All fact groups with at least one candidate fact."""
        return list(self._by_group)

    def compute_gains(
        self,
        state: ExpectationState,
        plan: PruningPlan,
        stats: SummarizerStatistics,
        excluded: set[Fact] | None = None,
    ) -> PruningOutcome:
        """Compute utility gains for all facts that survive pruning.

        ``excluded`` facts (already part of the speech) are skipped.
        The facts of every source group are always evaluated; target
        groups whose bound is dominated by the best source gain are
        discarded together with their specializations (Alg. 3, Line 19).
        """
        excluded = excluded or set()
        outcome = PruningOutcome()
        remaining = set(self._by_group)

        active = np.ones(self._index.num_facts, dtype=bool)
        if excluded:
            for i, fact in enumerate(self._facts):
                if fact in excluded:
                    active[i] = False

        # Line 9: utility gains for the pruning sources (one batch pass).
        source_mask = np.zeros(self._index.num_facts, dtype=bool)
        for source in plan.sources:
            ids = self._ids_by_group.get(source)
            if ids is not None:
                source_mask[ids] = True
        source_mask &= active
        max_source_gain = float("-inf")
        if source_mask.any():
            gains = self._index.subset_gains(source_mask, state.error)
            stats.fact_evaluations += int(source_mask.sum())
            for i in np.flatnonzero(source_mask):
                outcome.gains[self._facts[i]] = float(gains[i])
            max_source_gain = float(gains[source_mask].max())

        # Lines 11-22: prune dominated targets and their specializations.
        if plan.sources and max_source_gain > float("-inf"):
            for target in plan.targets:
                if target not in remaining:
                    continue
                bound = self._evaluator.max_group_bound(list(target.dimensions), state)
                stats.bound_evaluations += 1
                if max_source_gain > bound:
                    for group in list(remaining):
                        if group.is_specialization_of(target):
                            remaining.discard(group)
                            outcome.pruned_groups.append(group)
                            stats.groups_pruned += 1

        # Line 24: gains for the facts of all surviving groups (second batch).
        source_set = set(plan.sources)
        survivor_mask = np.zeros(self._index.num_facts, dtype=bool)
        for group in self._by_group:
            if group in remaining and group not in source_set:
                survivor_mask[self._ids_by_group[group]] = True
        survivor_mask &= active & ~source_mask
        if survivor_mask.any():
            gains = self._index.subset_gains(survivor_mask, state.error)
            stats.fact_evaluations += int(survivor_mask.sum())
            for i in np.flatnonzero(survivor_mask):
                fact = self._facts[i]
                if fact not in outcome.gains:
                    outcome.gains[fact] = float(gains[i])
        return outcome
