"""Random fact selection.

The user studies of Section VIII-C rank 100 randomly generated speeches
by the utility model and compare the best, median and worst ones.  The
:class:`RandomSummarizer` produces those random speeches.
"""

from __future__ import annotations

import random

from repro.algorithms.base import Summarizer, SummarizerStatistics
from repro.core.model import Speech
from repro.core.problem import SummarizationProblem


class RandomSummarizer(Summarizer):
    """Select ``max_facts`` candidate facts uniformly at random."""

    name = "RANDOM"
    #: One RNG stream advances across calls, so results depend on the
    #: order problems are solved in (parallel pre-processing runs this
    #: summarizer serially to keep its output reproducible).
    deterministic = False

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)

    def _solve(self, problem: SummarizationProblem) -> tuple[Speech, SummarizerStatistics]:
        stats = SummarizerStatistics()
        count = min(problem.max_facts, len(problem.candidate_facts))
        chosen = self._rng.sample(list(problem.candidate_facts), count)
        stats.speeches_considered = 1
        return Speech(chosen), stats

    def sample_speeches(self, problem: SummarizationProblem, count: int) -> list[Speech]:
        """Generate ``count`` independent random speeches for one problem."""
        speeches = []
        for _ in range(count):
            speeches.append(self._solve(problem)[0])
        return speeches
