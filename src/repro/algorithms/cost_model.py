"""Cost model for pruning plans (Section VI-C).

A pruning plan consists of *source* groups (whose facts' utility gains
are computed first) and *target* groups (whose per-scope bounds are
compared against the best source gain).  The cost of executing
Algorithm 3 under a plan is estimated as

    Σ_{s∈S} C_U(s)  +  Σ_{t∈T} C_D(t)  +  Σ_{g∈G\\S} Pr(¬P_g)·C_U(g)

where ``C_U`` is the cost of the utility join for a group, ``C_D`` the
cost of its bound computation, and ``Pr(¬P_g)`` the probability that
group ``g`` survives pruning.  Following the paper, per-fact utilities
are modelled as normal random variables whose mean is inversely
proportional to the number of facts in the group (facts of small groups
cover more rows), with a shared variance σ²; pruning outcomes are
assumed independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.facts.groups import FactGroup
from repro.relational.planner import CostEstimator


def _standard_normal_cdf(x: float) -> float:
    """Φ(x) for the standard normal distribution."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class PruningPlan:
    """A pruning plan: source groups and (ordered) target groups."""

    sources: tuple[FactGroup, ...]
    targets: tuple[FactGroup, ...]

    @property
    def is_trivial(self) -> bool:
        """True for the no-pruning plan (no sources or no targets)."""
        return not self.sources or not self.targets

    def __repr__(self) -> str:
        src = ", ".join(repr(s) for s in self.sources) or "<none>"
        tgt = ", ".join(repr(t) for t in self.targets) or "<none>"
        return f"PruningPlan(sources=[{src}], targets=[{tgt}])"


class PruningCostModel:
    """Estimates the processing cost of a pruning plan.

    Parameters
    ----------
    fact_counts:
        Number of candidate facts per fact group (M(g) in the paper).
        Obtained either from catalog statistics or from the actual
        generated fact sets.
    cost_estimator:
        Provides C_U / C_D estimates from relation statistics.
    sigma:
        Standard deviation of the per-fact utility distribution
        (a fixed model parameter; the paper assumes a constant σ²).
    """

    def __init__(
        self,
        fact_counts: Mapping[FactGroup, int],
        cost_estimator: CostEstimator,
        sigma: float = 0.25,
    ):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self._fact_counts = dict(fact_counts)
        self._estimator = cost_estimator
        self._sigma = float(sigma)

    # ------------------------------------------------------------------
    # Model components
    # ------------------------------------------------------------------
    def fact_count(self, group: FactGroup) -> int:
        """M(g): number of facts in the group (≥ 1)."""
        return max(1, self._fact_counts.get(group, self._estimator.fact_count(group.dimensions)))

    def utility_cost(self, group: FactGroup) -> float:
        """C_U(g): cost of computing utility gains for all facts of ``g``."""
        return float(self._estimator.utility_cost(group.dimensions))

    def deviation_cost(self, group: FactGroup) -> float:
        """C_D(g): cost of computing the per-scope bounds of ``g``."""
        return float(self._estimator.deviation_cost(group.dimensions))

    def prune_probability(self, source: FactGroup, target: FactGroup) -> float:
        """Pr(P_{s→t}): probability the source's best gain dominates the target bound.

        Per-fact utilities are modelled as N(1/M(g), σ²); the difference
        of two independent normals is normal with variance 2σ², hence

            Pr(u_s > u_t) = Φ((1/M(s) − 1/M(t)) / (σ·√2)).
        """
        mean_source = 1.0 / self.fact_count(source)
        mean_target = 1.0 / self.fact_count(target)
        z = (mean_source - mean_target) / (self._sigma * math.sqrt(2.0))
        return _standard_normal_cdf(z)

    def target_prune_probability(self, target: FactGroup, sources: Sequence[FactGroup]) -> float:
        """Pr(P_t): probability that *some* source dominates the target."""
        if not sources:
            return 0.0
        survive = 1.0
        for source in sources:
            survive *= 1.0 - self.prune_probability(source, target)
        return 1.0 - survive

    def group_survival_probability(
        self,
        group: FactGroup,
        sources: Sequence[FactGroup],
        targets: Sequence[FactGroup],
    ) -> float:
        """Pr(¬P_g): probability that group ``g`` is *not* pruned.

        A group may be pruned through any target it specializes (``t ⊆ g``);
        pruning outcomes are assumed independent.
        """
        probability = 1.0
        for target in targets:
            if not group.is_specialization_of(target):
                continue
            for source in sources:
                probability *= 1.0 - self.prune_probability(source, target)
        return probability

    # ------------------------------------------------------------------
    # Plan cost
    # ------------------------------------------------------------------
    def plan_cost(self, plan: PruningPlan, groups: Sequence[FactGroup]) -> float:
        """Estimated total processing cost of Algorithm 3 under ``plan``."""
        sources = set(plan.sources)
        cost = sum(self.utility_cost(s) for s in plan.sources)
        cost += sum(self.deviation_cost(t) for t in plan.targets)
        for group in groups:
            if group in sources:
                continue
            survival = self.group_survival_probability(group, plan.sources, plan.targets)
            cost += survival * self.utility_cost(group)
        return cost
